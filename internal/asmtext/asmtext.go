// Package asmtext assembles textual Tarantula assembly into executable
// programs for the functional machine — the human-facing counterpart of the
// vasm macro-assembler, using the paper's listing style:
//
//	        lda     r1, 4096(r31)
//	        setvs   r2
//	loop:   vldq    v0, 0(r1)
//	        vaddt.m v1, v1, v0
//	        vscatq  v1, 0(r3), [v2]
//	        lda     r4, -1(r4)
//	        bne     r4, loop
//	        halt
//
// Labels resolve to instruction indices; the paper's mnemonic aliases
// (vloadq, vstoreq, vcmpgt, ...) are accepted. Comments run from ';' or '#'
// to end of line.
package asmtext

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/isa"
)

// opByName maps mnemonics (and the paper's aliases) to opcodes.
var opByName = map[string]isa.Op{}

func init() {
	for op := isa.Op(1); ; op++ {
		info := isa.Lookup(op)
		if info.Name == "invalid" {
			break
		}
		opByName[info.Name] = op
	}
	// Aliases used in the paper's listings.
	for alias, name := range map[string]string{
		"vloadq":   "vldq",
		"vstoreq":  "vstq",
		"vscat":    "vscatq",
		"vgath":    "vgathq",
		"or":       "bis",
		"mov":      "bis",
		"prefetch": "prefq",
	} {
		opByName[alias] = opByName[name]
	}
}

// Assemble parses src into a runnable program.
func Assemble(src string) (arch.Program, error) {
	type pending struct {
		inst  int
		label string
		line  int
	}
	var prog arch.Program
	labels := map[string]int{}
	var fixups []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) prefix the instruction.
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,()") {
				break
			}
			name := strings.TrimSpace(line[:i])
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(prog)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		inst, labelRef, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{inst: len(prog), label: labelRef, line: lineNo + 1})
		}
		prog = append(prog, inst)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", f.line, f.label)
		}
		prog[f.inst].Imm = int64(target)
	}
	return prog, nil
}

// stripComment removes ';' comments anywhere and '#' comments, except that
// '#' immediately followed by a digit or sign is an immediate operand.
func stripComment(line string) string {
	if i := strings.Index(line, ";"); i >= 0 {
		line = line[:i]
	}
	for i := 0; i < len(line); i++ {
		if line[i] != '#' {
			continue
		}
		if i+1 < len(line) {
			c := line[i+1]
			if c == '-' || (c >= '0' && c <= '9') {
				continue // immediate, not a comment
			}
		}
		return line[:i]
	}
	return line
}

// parseInst assembles one instruction; for branches it may return the name
// of a label to resolve later.
func parseInst(line string) (isa.Inst, string, error) {
	var in isa.Inst
	fields := strings.SplitN(line, " ", 2)
	mnemonic := strings.ToLower(fields[0])
	if strings.HasSuffix(mnemonic, ".m") {
		in.Masked = true
		mnemonic = strings.TrimSuffix(mnemonic, ".m")
	}
	op, ok := opByName[mnemonic]
	// The paper writes compare-greater forms; synthesise them by swapping.
	swapped := false
	if !ok {
		if base, found := map[string]string{
			"vcmpgt": "vcmplt", "vcmpge": "vcmple",
			"cmpgt": "cmplt", "cmpge": "cmple",
		}[mnemonic]; found {
			op, ok = opByName[base]
			swapped = true
		}
	}
	if !ok {
		return in, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	in.Op = op

	var args []string
	if len(fields) > 1 {
		for _, a := range strings.Split(fields[1], ",") {
			if a = strings.TrimSpace(a); a != "" {
				args = append(args, a)
			}
		}
	}
	info := isa.Lookup(op)
	var err error
	switch {
	case info.IsLoad || info.IsStore:
		err = parseMem(&in, info, args)
	case info.IsBranch:
		return parseBranch(in, args)
	default:
		err = parseOperate(&in, info, args)
		if swapped {
			in.Src1, in.Src2 = in.Src2, in.Src1
		}
	}
	return in, "", err
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "vl":
		return isa.VL, nil
	case "vs":
		return isa.VS, nil
	case "vm":
		return isa.VM, nil
	}
	if len(s) < 2 {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		return isa.R(n), nil
	case 'f':
		return isa.F(n), nil
	case 'v':
		return isa.V(n), nil
	}
	return isa.NoReg, fmt.Errorf("bad register class in %q", s)
}

// parseMem handles "data, off(base)" plus the gather/scatter index vector
// "[vN]" and lda's address form.
func parseMem(in *isa.Inst, info *isa.Info, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("memory op needs data and address operands")
	}
	data, err := parseReg(args[0])
	if err != nil {
		return err
	}
	if info.IsStore {
		in.Src1 = data
	} else {
		in.Dst = data
	}
	off, base, err := parseAddr(args[1])
	if err != nil {
		return err
	}
	in.Imm, in.Src2 = off, base
	if len(args) == 3 {
		idx := strings.TrimSpace(args[2])
		if !strings.HasPrefix(idx, "[") || !strings.HasSuffix(idx, "]") {
			return fmt.Errorf("index vector must be written [vN], got %q", idx)
		}
		in.Idx, err = parseReg(idx[1 : len(idx)-1])
		if err != nil {
			return err
		}
	}
	return nil
}

func parseAddr(s string) (int64, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, isa.NoReg, fmt.Errorf("address must be off(reg), got %q", s)
	}
	off := int64(0)
	if o := strings.TrimSpace(s[:open]); o != "" {
		v, err := strconv.ParseInt(o, 0, 64)
		if err != nil {
			return 0, isa.NoReg, fmt.Errorf("bad displacement %q", o)
		}
		off = v
	}
	base, err := parseReg(s[open+1 : len(s)-1])
	return off, base, err
}

func parseBranch(in isa.Inst, args []string) (isa.Inst, string, error) {
	switch len(args) {
	case 1: // br label
		return in, args[0], nil
	case 2: // bne r1, label
		r, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		in.Src1 = r
		return in, args[1], nil
	}
	return in, "", fmt.Errorf("branch needs [reg,] label")
}

func parseOperate(in *isa.Inst, info *isa.Info, args []string) error {
	// lda uses the memory-style address form.
	if in.Op == isa.OpLDA && len(args) == 2 && strings.Contains(args[1], "(") {
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, base, err := parseAddr(args[1])
		if err != nil {
			return err
		}
		in.Dst, in.Src1, in.Imm = rd, base, off
		return nil
	}
	// Control ops with a single source.
	switch in.Op {
	case isa.OpSETVL, isa.OpSETVS, isa.OpSETVM:
		if len(args) != 1 {
			return fmt.Errorf("%s takes one register", info.Name)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		in.Src1 = r
		return nil
	case isa.OpVCLRM, isa.OpHALT, isa.OpDRAINM:
		return nil
	}
	regs := make([]isa.Reg, 0, 3)
	var imm *int64
	for _, a := range args {
		if strings.HasPrefix(a, "#") {
			v, err := strconv.ParseInt(strings.TrimPrefix(a, "#"), 0, 64)
			if err != nil {
				return fmt.Errorf("bad immediate %q", a)
			}
			imm = &v
			continue
		}
		r, err := parseReg(a)
		if err != nil {
			return err
		}
		regs = append(regs, r)
	}
	switch {
	case len(regs) == 3:
		in.Dst, in.Src1, in.Src2 = regs[0], regs[1], regs[2]
	case len(regs) == 2 && imm != nil:
		in.Dst, in.Src1, in.Imm = regs[0], regs[1], *imm
	case len(regs) == 2:
		in.Dst, in.Src1 = regs[0], regs[1]
	case len(regs) == 1 && imm != nil:
		in.Dst, in.Imm = regs[0], *imm
	default:
		return fmt.Errorf("cannot parse operands of %s", info.Name)
	}
	return nil
}

// Disassemble renders a program back to assembly, with labels synthesised
// for branch targets. Assemble(Disassemble(p)) reproduces p.
func Disassemble(p arch.Program) string {
	targets := map[int]string{}
	for i := range p {
		if p[i].Info().IsBranch {
			t := int(p[i].Imm)
			if _, ok := targets[t]; !ok {
				targets[t] = fmt.Sprintf("L%d", len(targets))
			}
		}
	}
	var b strings.Builder
	for i := range p {
		label := ""
		if l, ok := targets[i]; ok {
			label = l + ":"
		}
		in := p[i]
		text := in.String()
		if in.Info().IsBranch {
			// Replace "@n" with the label.
			at := strings.LastIndex(text, "@")
			text = text[:at] + targets[int(in.Imm)]
		}
		fmt.Fprintf(&b, "%-8s%s\n", label, text)
	}
	return b.String()
}
