package asmtext

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
)

func mustAssemble(t *testing.T, src string) arch.Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestSumLoop(t *testing.T) {
	p := mustAssemble(t, `
		; sum 1..10 into r3
		        lda     r1, 10(r31)
		        lda     r3, 0(r31)
		loop:   addq    r3, r3, r1
		        lda     r1, -1(r1)
		        bne     r1, loop
		        halt
	`)
	m := arch.New(mem.New())
	if _, err := m.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if m.R[3] != 55 {
		t.Fatalf("sum = %d, want 55", m.R[3])
	}
}

func TestPaperListing(t *testing.T) {
	// The §2 example, written as in the paper (vloadq alias, vcmpgt
	// synthesised by operand swap, setvm, masked execution).
	src := `
	        lda     r1, 0x100000(r31)
	        lda     r2, 0x200000(r31)
	        lda     r9, 8(r31)
	        setvs   r9
	        vloadq  v0, 0(r1)          ; A
	        vloadq  v1, 0(r2)          ; B
	        vcmpne  v6, v0, v31        ; A != 0
	        vsmulq  v7, v1, r31        ; scratch: v7 = 0
	        vscmplt v7, v1, r10        ; B < r10? -- placeholder
	        vand    v8, v6, v7
	        setvm   v8
	        vaddq.m v2, v0, v1
	        halt
	`
	p := mustAssemble(t, src)
	m := arch.New(mem.New())
	// A: odd elements non-zero; B: all 5 (so B < 7 true), r10 = 7.
	for i := 0; i < isa.VLMax; i++ {
		m.Mem.StoreQ(0x100000+uint64(i)*8, uint64(i%2))
		m.Mem.StoreQ(0x200000+uint64(i)*8, 5)
	}
	m.R[10] = 7
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < isa.VLMax; i++ {
		if i%2 == 1 {
			if m.V[2][i] != uint64(i%2)+5 {
				t.Fatalf("masked-in element %d = %d", i, m.V[2][i])
			}
		} else if m.V[2][i] != 0 {
			t.Fatalf("masked-out element %d written: %d", i, m.V[2][i])
		}
	}
}

func TestGatherScatterSyntax(t *testing.T) {
	p := mustAssemble(t, `
	        lda     r1, 0x100000(r31)
	        vgathq  v2, 0(r1), [v1]
	        vscatq  v2, 512(r1), [v1]
	        halt
	`)
	if p[1].Op != isa.OpVGATHQ || p[1].Idx != isa.V(1) || p[1].Dst != isa.V(2) {
		t.Fatalf("gather parsed as %+v", p[1])
	}
	if p[2].Op != isa.OpVSCATQ || p[2].Src1 != isa.V(2) || p[2].Imm != 512 {
		t.Fatalf("scatter parsed as %+v", p[2])
	}
	m := arch.New(mem.New())
	for i := 0; i < isa.VLMax; i++ {
		m.V[1][i] = uint64(i) * 8
		m.Mem.StoreQ(0x100000+uint64(i)*8, uint64(1000+i))
	}
	if _, err := m.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.LoadQ(0x100000 + 512); got != 1000 {
		t.Fatalf("scattered[0] = %d", got)
	}
}

func TestMaskedSuffix(t *testing.T) {
	p := mustAssemble(t, "vaddt.m v1, v2, v3\nhalt")
	if !p[0].Masked {
		t.Fatal(".m suffix not parsed")
	}
}

func TestImmediateOperand(t *testing.T) {
	p := mustAssemble(t, "sll r1, r2, #3\nhalt")
	if p[0].Op != isa.OpSLL || p[0].Imm != 3 || p[0].Src2.Valid() {
		t.Fatalf("parsed %+v", p[0])
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",          // unknown mnemonic
		"addq r1, r99, r2",      // bad register
		"bne r1, nowhere\nhalt", // undefined label
		"x: halt\nx: halt",      // duplicate label
		"ldq r1, r2",            // malformed address
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assemble(%q) succeeded, want error", src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
	        lda     r1, 100(r31)
	        lda     r2, 0x100000(r31)
	loop:   ldq     r3, 0(r2)
	        addq    r4, r4, r3
	        lda     r2, 8(r2)
	        lda     r1, -1(r1)
	        bne     r1, loop
	        setvl   r1
	        vldq    v0, 0(r2)
	        vaddt   v1, v1, v0
	        vstq    v1, 0(r2)
	        halt
	`
	p1 := mustAssemble(t, src)
	text := Disassemble(p1)
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if len(p1) != len(p2) {
		t.Fatalf("length changed: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("instruction %d changed:\n  %+v\n  %+v", i, p1[i], p2[i])
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAssemble(t, `
		# full-line comment

		halt   ; trailing comment
	`)
	if len(p) != 1 || p[0].Op != isa.OpHALT {
		t.Fatalf("parsed %d instructions", len(p))
	}
}

func TestAliasTable(t *testing.T) {
	for src, canonical := range map[string]isa.Op{
		"vloadq v1, 0(r2)":  isa.OpVLDQ,
		"vstoreq v1, 0(r2)": isa.OpVSTQ,
		"or r1, r2, r3":     isa.OpBIS,
		"mov r1, r2, r2":    isa.OpBIS,
	} {
		p := mustAssemble(t, src+"\nhalt")
		if p[0].Op != canonical {
			t.Errorf("%s assembled to %v", strings.Fields(src)[0], p[0].Op)
		}
	}
}
