package isa

import (
	"fmt"
	"strings"
)

// Inst is one static instruction. Operand meaning by group:
//
//	scalar operate:  Dst = op(Src1, Src2|Imm)
//	scalar memory:   Dst/Src1 = data reg, Src2 = base reg, Imm = displacement
//	branch:          Src1 = condition reg, Imm = target (instruction index)
//	VV:              Dst(vec) = op(Src1(vec), Src2(vec))
//	VS:              Dst(vec) = op(Src1(vec), Src2(scalar))
//	SM:              Dst/Src1 = data vec, Src2 = base (int), Imm = displacement
//	RM:              Dst/Src1 = data vec, Src2 = base (int), Idx = index vec
//	VC:              per-op (see arch package)
//
// Masked marks execution under the vm register ("under-mask specifier").
type Inst struct {
	Op     Op
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Idx    Reg // index vector for gather/scatter
	Imm    int64
	Masked bool

	// Thread is the SMT thread id. The paper's evaluation is single
	// threaded but the Vbox is multithreaded, so the id is plumbed
	// everywhere.
	Thread uint8
}

// Info returns the opcode metadata.
func (i *Inst) Info() *Info { return Lookup(i.Op) }

// IsVector reports whether the instruction executes in the Vbox.
func (i *Inst) IsVector() bool { return i.Op.IsVector() }

// IsVMem reports whether the instruction is a vector memory access.
func (i *Inst) IsVMem() bool {
	g := i.Info().Group
	return (g == GSM || g == GRM) && (i.Info().IsLoad || i.Info().IsStore)
}

// IsPrefetch reports whether the instruction is a (vector or scalar)
// prefetch: a load whose destination is hardwired zero. Page faults and TLB
// misses on prefetches are squashed (§2).
func (i *Inst) IsPrefetch() bool {
	return i.Info().IsLoad && (i.Op == OpPREFQ || i.Dst.IsZero())
}

// String renders the instruction in the paper's assembly-ish style.
func (i *Inst) String() string {
	in := i.Info()
	var b strings.Builder
	b.WriteString(in.Name)
	if i.Masked {
		b.WriteString(".m")
	}
	sep := " "
	emit := func(s string) {
		b.WriteString(sep)
		b.WriteString(s)
		sep = ", "
	}
	switch {
	case in.IsLoad || in.IsStore:
		data := i.Dst
		if in.IsStore {
			data = i.Src1
		}
		if data.Valid() {
			emit(data.String())
		}
		emit(fmt.Sprintf("%d(%s)", i.Imm, i.Src2))
		if i.Idx.Valid() {
			emit("[" + i.Idx.String() + "]")
		}
	case in.IsBranch:
		if i.Src1.Valid() {
			emit(i.Src1.String())
		}
		emit(fmt.Sprintf("@%d", i.Imm))
	default:
		if i.Dst.Valid() {
			emit(i.Dst.String())
		}
		if i.Src1.Valid() {
			emit(i.Src1.String())
		}
		if i.Src2.Valid() {
			emit(i.Src2.String())
		} else if !in.IsBranch && usesImm(i) {
			emit(fmt.Sprintf("#%d", i.Imm))
		}
	}
	return b.String()
}

func usesImm(i *Inst) bool {
	switch i.Op {
	case OpLDA:
		return true
	}
	return !i.Src2.Valid() && i.Imm != 0
}
