package isa

import "testing"

func TestVectorOpCount(t *testing.T) {
	// §2: "45 new instructions (not counting data-type variations) are
	// added". Our encoding enumerates datatype variants (Q and T forms)
	// separately, so we must have at least 45 vector opcodes.
	if n := NumVectorOps(); n < 45 {
		t.Fatalf("only %d vector opcodes defined, paper specifies 45", n)
	}
}

func TestEveryOpHasMetadata(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		in := Lookup(op)
		if in.Name == "" || in.Name == "invalid" {
			t.Errorf("op %d has no metadata", op)
		}
		if in.Latency <= 0 {
			t.Errorf("op %s has non-positive latency", in.Name)
		}
		if in.FU == FUNone {
			t.Errorf("op %s has no functional unit", in.Name)
		}
	}
}

func TestGroupAssignments(t *testing.T) {
	cases := []struct {
		op Op
		g  Group
	}{
		{OpVADDT, GVV},
		{OpVSADDT, GVS},
		{OpVLDQ, GSM},
		{OpVGATHQ, GRM},
		{OpSETVM, GVC},
		{OpADDQ, GScalar},
	}
	for _, c := range cases {
		if got := Lookup(c.op).Group; got != c.g {
			t.Errorf("%s group = %s, want %s", c.op, got, c.g)
		}
	}
}

func TestRegFlat(t *testing.T) {
	seen := make(map[int]Reg)
	regs := []Reg{}
	for i := 0; i < 32; i++ {
		regs = append(regs, R(i), F(i), V(i))
	}
	regs = append(regs, VL, VS, VM)
	for _, r := range regs {
		f := r.Flat()
		if f < 0 || f >= NumFlatRegs {
			t.Fatalf("%s flat id %d out of range", r, f)
		}
		if prev, dup := seen[f]; dup {
			t.Fatalf("flat id collision: %s and %s", prev, r)
		}
		seen[f] = r
	}
}

func TestZeroRegisters(t *testing.T) {
	for _, r := range []Reg{RZero, FZero, VZero} {
		if !r.IsZero() {
			t.Errorf("%s should be hardwired zero", r)
		}
	}
	if R(0).IsZero() || V(30).IsZero() {
		t.Error("non-31 registers must not be zero registers")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpVADDT, Dst: V(2), Src1: V(0), Src2: V(1)}, "vaddt v2, v0, v1"},
		{Inst{Op: OpVADDT, Dst: V(2), Src1: V(0), Src2: V(1), Masked: true}, "vaddt.m v2, v0, v1"},
		{Inst{Op: OpVLDQ, Dst: V(3), Src2: R(4), Imm: 16}, "vldq v3, 16(r4)"},
		{Inst{Op: OpVGATHQ, Dst: V(3), Src2: R(4), Idx: V(9)}, "vgathq v3, 0(r4), [v9]"},
		{Inst{Op: OpBNE, Src1: R(1), Imm: 12}, "bne r1, @12"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestPrefetchDetection(t *testing.T) {
	pref := Inst{Op: OpVLDQ, Dst: VZero, Src2: R(1)}
	if !pref.IsPrefetch() {
		t.Error("vldq to v31 must be a prefetch")
	}
	load := Inst{Op: OpVLDQ, Dst: V(0), Src2: R(1)}
	if load.IsPrefetch() {
		t.Error("vldq to v0 must not be a prefetch")
	}
	if !(&Inst{Op: OpPREFQ, Dst: RZero, Src2: R(1)}).IsPrefetch() {
		t.Error("prefq must be a prefetch")
	}
}

func TestIsVMem(t *testing.T) {
	if !(&Inst{Op: OpVSCATQ}).IsVMem() {
		t.Error("vscatq is vector memory")
	}
	if (&Inst{Op: OpSETVL}).IsVMem() {
		t.Error("setvl is not vector memory")
	}
	if (&Inst{Op: OpLDQ}).IsVMem() {
		t.Error("ldq is not vector memory")
	}
}

func TestUnpipelinedOps(t *testing.T) {
	for _, op := range []Op{OpVDIVT, OpVSQRTT, OpDIVT, OpSQRTT, OpVSDIVT} {
		if !Lookup(op).Unpipelined {
			t.Errorf("%s should be unpipelined", op)
		}
	}
	if Lookup(OpVADDT).Unpipelined {
		t.Error("vaddt should be pipelined")
	}
}
