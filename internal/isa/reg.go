// Package isa defines the Tarantula instruction set: the Alpha scalar subset
// the workloads need plus the vector extension of the paper's §2 — 32 vector
// registers of 128 64-bit elements, the vl/vs/vm control registers, and the
// new instructions in their five groups (VV, VS, SM, RM, VC).
package isa

import "fmt"

// VLMax is the architectural maximum vector length: each vector register
// holds 128 64-bit values.
const VLMax = 128

// NumLanes is the number of Vbox lanes; element i of a vector register lives
// in lane i mod NumLanes.
const NumLanes = 16

// RegKind distinguishes the architectural register namespaces.
type RegKind uint8

const (
	// KindNone marks an absent operand.
	KindNone RegKind = iota
	// KindInt is the scalar integer file r0..r31 (r31 reads as zero).
	KindInt
	// KindFP is the scalar floating file f0..f31 (f31 reads as zero).
	KindFP
	// KindVec is the vector file v0..v31 (v31 reads as zero and squashes
	// faults when used as a destination: that is how vector prefetch is
	// expressed).
	KindVec
	// KindCtl is the vector control registers vl, vs, vm.
	KindCtl
)

// Reg identifies an architectural register: a kind plus an index. It is a
// small value type so the timing models can use it directly as a rename-map
// key.
type Reg struct {
	Kind RegKind
	Idx  uint8
}

// Control register indices within KindCtl.
const (
	CtlVL uint8 = iota
	CtlVS
	CtlVM
)

// Convenience constructors.

// R returns scalar integer register n.
func R(n int) Reg { return Reg{KindInt, uint8(n)} }

// F returns scalar floating-point register n.
func F(n int) Reg { return Reg{KindFP, uint8(n)} }

// V returns vector register n.
func V(n int) Reg { return Reg{KindVec, uint8(n)} }

// Well-known registers.
var (
	NoReg = Reg{} // absent operand
	RZero = R(31) // integer hardwired zero
	FZero = F(31) // floating hardwired zero
	VZero = V(31) // vector hardwired zero / prefetch destination
	VL    = Reg{KindCtl, CtlVL}
	VS    = Reg{KindCtl, CtlVS}
	VM    = Reg{KindCtl, CtlVM}
)

// IsZero reports whether the register is one of the hardwired-zero names.
func (r Reg) IsZero() bool {
	return (r.Kind == KindInt || r.Kind == KindFP || r.Kind == KindVec) && r.Idx == 31
}

// Valid reports whether r names a real register (not NoReg).
func (r Reg) Valid() bool { return r.Kind != KindNone }

func (r Reg) String() string {
	switch r.Kind {
	case KindNone:
		return "-"
	case KindInt:
		return fmt.Sprintf("r%d", r.Idx)
	case KindFP:
		return fmt.Sprintf("f%d", r.Idx)
	case KindVec:
		return fmt.Sprintf("v%d", r.Idx)
	case KindCtl:
		switch r.Idx {
		case CtlVL:
			return "vl"
		case CtlVS:
			return "vs"
		case CtlVM:
			return "vm"
		}
	}
	return fmt.Sprintf("reg(%d,%d)", r.Kind, r.Idx)
}

// Flat returns a dense id usable as an array index across all namespaces.
// Layout: 32 int, 32 fp, 32 vec, 3 ctl.
func (r Reg) Flat() int {
	switch r.Kind {
	case KindInt:
		return int(r.Idx)
	case KindFP:
		return 32 + int(r.Idx)
	case KindVec:
		return 64 + int(r.Idx)
	case KindCtl:
		return 96 + int(r.Idx)
	}
	return -1
}

// NumFlatRegs is the size of a Flat-indexed table.
const NumFlatRegs = 99
