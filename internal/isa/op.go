package isa

// Group classifies an opcode per the paper's taxonomy (§2): the five new
// vector groups plus the pre-existing scalar Alpha classes we model.
type Group uint8

const (
	// GScalar covers the Alpha scalar subset (integer, FP, memory, branch).
	GScalar Group = iota
	// GVV is vector-vector operate.
	GVV
	// GVS is vector-scalar operate (one source comes from the EV8 scalar
	// register file over the two 64-bit operand buses).
	GVS
	// GSM is strided memory access (uses the vs control register).
	GSM
	// GRM is random memory access (gather/scatter; addresses from a vector
	// register, routed through the CR box).
	GRM
	// GVC is vector control (setvl, setvs, setvm, element moves).
	GVC
)

func (g Group) String() string {
	switch g {
	case GScalar:
		return "scalar"
	case GVV:
		return "VV"
	case GVS:
		return "VS"
	case GSM:
		return "SM"
	case GRM:
		return "RM"
	case GVC:
		return "VC"
	}
	return "group?"
}

// FU is the functional-unit class an operation executes on. The Vbox has two
// issue ports (north/south); each port fronts 16 lanes, each lane with one
// FU per port. The scalar core has its own pools sized per Table 3.
type FU uint8

const (
	FUNone FU = iota
	FUIntALU
	FUIntMul
	FUFPAdd
	FUFPMul
	FUFPDiv
	FULoad
	FUStore
	FUBranch
	FUVCtl
)

func (f FU) String() string {
	switch f {
	case FUNone:
		return "none"
	case FUIntALU:
		return "ialu"
	case FUIntMul:
		return "imul"
	case FUFPAdd:
		return "fadd"
	case FUFPMul:
		return "fmul"
	case FUFPDiv:
		return "fdiv"
	case FULoad:
		return "load"
	case FUStore:
		return "store"
	case FUBranch:
		return "br"
	case FUVCtl:
		return "vctl"
	}
	return "fu?"
}

// Op is an opcode.
type Op uint16

// Scalar Alpha subset.
const (
	OpInvalid Op = iota

	// Scalar integer operate.
	OpLDA // rd = rb + imm (address arithmetic / load immediate)
	OpADDQ
	OpSUBQ
	OpMULQ
	OpS8ADDQ // rd = ra*8 + rb (Alpha scaled add, heavily used for indexing)
	OpAND
	OpBIS // logical OR (Alpha mnemonic)
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpCMPEQ
	OpCMPLT
	OpCMPLE
	OpCMPULT

	// Scalar floating operate (T = IEEE double, following Alpha naming).
	OpADDT
	OpSUBT
	OpMULT
	OpDIVT
	OpSQRTT
	OpCMPTEQ
	OpCMPTLT
	OpCMPTLE
	OpCVTQT // integer -> double
	OpCVTTQ // double -> integer (truncating)

	// Scalar memory.
	OpLDQ
	OpSTQ
	OpLDT
	OpSTT
	OpWH64  // write-hint 64: zero-allocate a cache line without reading it
	OpPREFQ // software prefetch (LDQ to r31 in real Alpha)

	// Control.
	OpBR
	OpBEQ
	OpBNE
	OpBLT
	OpBLE
	OpBGT
	OpBGE
	OpHALT // simulator end-of-program marker

	// DrainM: the new memory barrier of §3.4 — purges the write buffer,
	// updates L2 P-bits, then replay-traps younger instructions.
	OpDRAINM

	// Vector-vector operate (VV).
	OpVADDQ
	OpVSUBQ
	OpVMULQ
	OpVAND
	OpVBIS
	OpVXOR
	OpVSLL
	OpVSRL
	OpVSRA
	OpVCMPEQ
	OpVCMPNE
	OpVCMPLT
	OpVCMPLE
	OpVADDT
	OpVSUBT
	OpVMULT
	OpVDIVT
	OpVSQRTT
	OpVCMPTEQ
	OpVCMPTLT
	OpVCMPTLE
	OpVMAXT
	OpVMINT
	OpVCVTQT
	OpVCVTTQ
	OpVMERG // vd[i] = vm[i] ? va[i] : vb[i]
	// VFMAT is the §5 extension study: "adding floating point
	// multiply-accumulate units (FMAC) to Tarantula, this rate could be
	// doubled with very little extra complexity and power". The destination
	// doubles as the accumulator so no third read port is needed:
	// vd[i] += va[i]·vb[i].
	OpVFMAT

	// Vector-scalar operate (VS). The scalar operand rides the operand
	// buses from the EV8 register file.
	OpVSADDQ
	OpVSSUBQ
	OpVSMULQ
	OpVSAND
	OpVSBIS
	OpVSXOR
	OpVSSLL
	OpVSSRL
	OpVSCMPEQ
	OpVSCMPLT
	OpVSADDT
	OpVSSUBT
	OpVSMULT
	OpVSDIVT
	OpVSCMPTEQ
	OpVSCMPTLT
	OpVSCMPTLE
	// VSFMAT: vd[i] += va[i]·s (the FMAC extension's vector-scalar form).
	OpVSFMAT

	// Strided memory (SM). Effective address of element i is
	// rb + imm + i*vs (vs in bytes). vd/va = data register.
	OpVLDQ
	OpVSTQ

	// Random memory (RM). Element i accesses rb + va[i].
	OpVGATHQ
	OpVSCATQ

	// Vector control (VC).
	OpSETVL // vl = ra (clamped to 128)
	OpSETVS // vs = ra
	OpSETVM // vm = low bit of each element of va
	OpVEXTR // rd = va[rb] — vector element to scalar (20-cycle round trip)
	OpVINS  // vd[rb] = ra — scalar to vector element
	OpVCLRM // vm = all ones (clear masking)

	opMax
)

// Info is static metadata about an opcode.
type Info struct {
	Name  string
	Group Group
	FU    FU

	// Latency is the execute latency in cycles once operands are available
	// (scalar pipe; the Vbox applies its own lane pipeline on top).
	Latency int

	// FlopsPer is the floating-point operations each active element
	// performs (2 for fused multiply-accumulate); zero means one.
	FlopsPer int

	// Flags.
	IsLoad      bool
	IsStore     bool
	IsFlop      bool // counts toward FPC in Figure 6
	IsBranch    bool
	WritesMask  bool // SETVM
	Unpipelined bool // divides/sqrt block their FU for Latency cycles
}

var infos = [opMax]Info{
	OpLDA:    {Name: "lda", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpADDQ:   {Name: "addq", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpSUBQ:   {Name: "subq", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpMULQ:   {Name: "mulq", Group: GScalar, FU: FUIntMul, Latency: 7},
	OpS8ADDQ: {Name: "s8addq", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpAND:    {Name: "and", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpBIS:    {Name: "bis", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpXOR:    {Name: "xor", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpSLL:    {Name: "sll", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpSRL:    {Name: "srl", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpSRA:    {Name: "sra", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpCMPEQ:  {Name: "cmpeq", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpCMPLT:  {Name: "cmplt", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpCMPLE:  {Name: "cmple", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpCMPULT: {Name: "cmpult", Group: GScalar, FU: FUIntALU, Latency: 1},

	OpADDT:   {Name: "addt", Group: GScalar, FU: FUFPAdd, Latency: 4, IsFlop: true},
	OpSUBT:   {Name: "subt", Group: GScalar, FU: FUFPAdd, Latency: 4, IsFlop: true},
	OpMULT:   {Name: "mult", Group: GScalar, FU: FUFPMul, Latency: 4, IsFlop: true},
	OpDIVT:   {Name: "divt", Group: GScalar, FU: FUFPDiv, Latency: 16, IsFlop: true, Unpipelined: true},
	OpSQRTT:  {Name: "sqrtt", Group: GScalar, FU: FUFPDiv, Latency: 24, IsFlop: true, Unpipelined: true},
	OpCMPTEQ: {Name: "cmpteq", Group: GScalar, FU: FUFPAdd, Latency: 4},
	OpCMPTLT: {Name: "cmptlt", Group: GScalar, FU: FUFPAdd, Latency: 4},
	OpCMPTLE: {Name: "cmptle", Group: GScalar, FU: FUFPAdd, Latency: 4},
	OpCVTQT:  {Name: "cvtqt", Group: GScalar, FU: FUFPAdd, Latency: 4},
	OpCVTTQ:  {Name: "cvttq", Group: GScalar, FU: FUFPAdd, Latency: 4},

	OpLDQ:   {Name: "ldq", Group: GScalar, FU: FULoad, Latency: 1, IsLoad: true},
	OpSTQ:   {Name: "stq", Group: GScalar, FU: FUStore, Latency: 1, IsStore: true},
	OpLDT:   {Name: "ldt", Group: GScalar, FU: FULoad, Latency: 1, IsLoad: true},
	OpSTT:   {Name: "stt", Group: GScalar, FU: FUStore, Latency: 1, IsStore: true},
	OpWH64:  {Name: "wh64", Group: GScalar, FU: FUStore, Latency: 1, IsStore: true},
	OpPREFQ: {Name: "prefq", Group: GScalar, FU: FULoad, Latency: 1, IsLoad: true},

	OpBR:  {Name: "br", Group: GScalar, FU: FUBranch, Latency: 1, IsBranch: true},
	OpBEQ: {Name: "beq", Group: GScalar, FU: FUBranch, Latency: 1, IsBranch: true},
	OpBNE: {Name: "bne", Group: GScalar, FU: FUBranch, Latency: 1, IsBranch: true},
	OpBLT: {Name: "blt", Group: GScalar, FU: FUBranch, Latency: 1, IsBranch: true},
	OpBLE: {Name: "ble", Group: GScalar, FU: FUBranch, Latency: 1, IsBranch: true},
	OpBGT: {Name: "bgt", Group: GScalar, FU: FUBranch, Latency: 1, IsBranch: true},
	OpBGE: {Name: "bge", Group: GScalar, FU: FUBranch, Latency: 1, IsBranch: true},

	OpHALT:   {Name: "halt", Group: GScalar, FU: FUIntALU, Latency: 1},
	OpDRAINM: {Name: "drainm", Group: GScalar, FU: FUStore, Latency: 1},

	OpVADDQ:   {Name: "vaddq", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVSUBQ:   {Name: "vsubq", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVMULQ:   {Name: "vmulq", Group: GVV, FU: FUIntMul, Latency: 7},
	OpVAND:    {Name: "vand", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVBIS:    {Name: "vbis", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVXOR:    {Name: "vxor", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVSLL:    {Name: "vsll", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVSRL:    {Name: "vsrl", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVSRA:    {Name: "vsra", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVCMPEQ:  {Name: "vcmpeq", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVCMPNE:  {Name: "vcmpne", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVCMPLT:  {Name: "vcmplt", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVCMPLE:  {Name: "vcmple", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVADDT:   {Name: "vaddt", Group: GVV, FU: FUFPAdd, Latency: 4, IsFlop: true},
	OpVSUBT:   {Name: "vsubt", Group: GVV, FU: FUFPAdd, Latency: 4, IsFlop: true},
	OpVMULT:   {Name: "vmult", Group: GVV, FU: FUFPMul, Latency: 4, IsFlop: true},
	OpVDIVT:   {Name: "vdivt", Group: GVV, FU: FUFPDiv, Latency: 16, IsFlop: true, Unpipelined: true},
	OpVSQRTT:  {Name: "vsqrtt", Group: GVV, FU: FUFPDiv, Latency: 24, IsFlop: true, Unpipelined: true},
	OpVCMPTEQ: {Name: "vcmpteq", Group: GVV, FU: FUFPAdd, Latency: 4},
	OpVCMPTLT: {Name: "vcmptlt", Group: GVV, FU: FUFPAdd, Latency: 4},
	OpVCMPTLE: {Name: "vcmptle", Group: GVV, FU: FUFPAdd, Latency: 4},
	OpVMAXT:   {Name: "vmaxt", Group: GVV, FU: FUFPAdd, Latency: 4, IsFlop: true},
	OpVMINT:   {Name: "vmint", Group: GVV, FU: FUFPAdd, Latency: 4, IsFlop: true},
	OpVCVTQT:  {Name: "vcvtqt", Group: GVV, FU: FUFPAdd, Latency: 4},
	OpVCVTTQ:  {Name: "vcvttq", Group: GVV, FU: FUFPAdd, Latency: 4},
	OpVMERG:   {Name: "vmerg", Group: GVV, FU: FUIntALU, Latency: 1},
	OpVFMAT:   {Name: "vfmat", Group: GVV, FU: FUFPMul, Latency: 5, IsFlop: true, FlopsPer: 2},

	OpVSADDQ:   {Name: "vsaddq", Group: GVS, FU: FUIntALU, Latency: 1},
	OpVSSUBQ:   {Name: "vssubq", Group: GVS, FU: FUIntALU, Latency: 1},
	OpVSMULQ:   {Name: "vsmulq", Group: GVS, FU: FUIntMul, Latency: 7},
	OpVSAND:    {Name: "vsand", Group: GVS, FU: FUIntALU, Latency: 1},
	OpVSBIS:    {Name: "vsbis", Group: GVS, FU: FUIntALU, Latency: 1},
	OpVSXOR:    {Name: "vsxor", Group: GVS, FU: FUIntALU, Latency: 1},
	OpVSSLL:    {Name: "vssll", Group: GVS, FU: FUIntALU, Latency: 1},
	OpVSSRL:    {Name: "vssrl", Group: GVS, FU: FUIntALU, Latency: 1},
	OpVSCMPEQ:  {Name: "vscmpeq", Group: GVS, FU: FUIntALU, Latency: 1},
	OpVSCMPLT:  {Name: "vscmplt", Group: GVS, FU: FUIntALU, Latency: 1},
	OpVSADDT:   {Name: "vsaddt", Group: GVS, FU: FUFPAdd, Latency: 4, IsFlop: true},
	OpVSSUBT:   {Name: "vssubt", Group: GVS, FU: FUFPAdd, Latency: 4, IsFlop: true},
	OpVSMULT:   {Name: "vsmult", Group: GVS, FU: FUFPMul, Latency: 4, IsFlop: true},
	OpVSDIVT:   {Name: "vsdivt", Group: GVS, FU: FUFPDiv, Latency: 16, IsFlop: true, Unpipelined: true},
	OpVSCMPTEQ: {Name: "vscmpteq", Group: GVS, FU: FUFPAdd, Latency: 4},
	OpVSCMPTLT: {Name: "vscmptlt", Group: GVS, FU: FUFPAdd, Latency: 4},
	OpVSCMPTLE: {Name: "vscmptle", Group: GVS, FU: FUFPAdd, Latency: 4},
	OpVSFMAT:   {Name: "vsfmat", Group: GVS, FU: FUFPMul, Latency: 5, IsFlop: true, FlopsPer: 2},

	OpVLDQ:   {Name: "vldq", Group: GSM, FU: FULoad, Latency: 1, IsLoad: true},
	OpVSTQ:   {Name: "vstq", Group: GSM, FU: FUStore, Latency: 1, IsStore: true},
	OpVGATHQ: {Name: "vgathq", Group: GRM, FU: FULoad, Latency: 1, IsLoad: true},
	OpVSCATQ: {Name: "vscatq", Group: GRM, FU: FUStore, Latency: 1, IsStore: true},

	OpSETVL: {Name: "setvl", Group: GVC, FU: FUVCtl, Latency: 1},
	OpSETVS: {Name: "setvs", Group: GVC, FU: FUVCtl, Latency: 1},
	OpSETVM: {Name: "setvm", Group: GVC, FU: FUVCtl, Latency: 1, WritesMask: true},
	OpVEXTR: {Name: "vextr", Group: GVC, FU: FUVCtl, Latency: 20}, // Vbox->EV8 round trip (§2)
	OpVINS:  {Name: "vins", Group: GVC, FU: FUVCtl, Latency: 10},
	OpVCLRM: {Name: "vclrm", Group: GVC, FU: FUVCtl, Latency: 1, WritesMask: true},
}

// Lookup returns the metadata for op.
// Flops returns the per-element flop count of op.
func (in *Info) Flops() uint64 {
	if in.FlopsPer == 0 {
		if in.IsFlop {
			return 1
		}
		return 0
	}
	return uint64(in.FlopsPer)
}

func Lookup(op Op) *Info {
	if int(op) >= len(infos) || infos[op].Name == "" {
		return &Info{Name: "invalid", Group: GScalar, FU: FUNone, Latency: 1}
	}
	return &infos[op]
}

// IsVector reports whether op is one of the new Tarantula instructions
// (executed by the Vbox rather than the EV8 core).
func (op Op) IsVector() bool {
	g := Lookup(op).Group
	return g != GScalar
}

// NumVectorOps returns the count of distinct new vector opcodes, checked by a
// test against the paper's "45 new instructions (not counting data-type
// variations)".
func NumVectorOps() int {
	n := 0
	for op := Op(1); op < opMax; op++ {
		if op.IsVector() {
			n++
		}
	}
	return n
}

func (op Op) String() string { return Lookup(op).Name }
