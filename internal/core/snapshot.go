package core

import (
	"fmt"

	"repro/internal/snapshot"
)

// SaveState encodes the core's durable state at a quiescent phase boundary:
// the L1 tag store, the branch predictor, the global dispatch-age counter
// (store-forwarding and the retire-order invariant compare against it, so
// it must survive restore for bit-identity), round-robin pointers, the
// last-retirement markers and the functional-unit reservations. Per-phase
// thread state (ROB, traces) is rebuilt by Bind and never serialized; the
// MSHR and write buffer must have drained.
func (c *Core) SaveState(w *snapshot.Writer, now uint64) error {
	if c.Busy() {
		return fmt.Errorf("core: uops or writebacks in flight; snapshots require a quiescent chip")
	}
	if len(c.mshr) > 0 || len(c.mshrPref) > 0 || c.ready.Len() > 0 || len(c.blocked) > 0 {
		return fmt.Errorf("core: MSHR or issue queues not empty; snapshots require a quiescent chip")
	}
	w.Tag("core")
	w.U64(c.dispatchSeq)
	w.Int(c.rrFetch)
	w.Int(c.rrRetire)
	w.U64(c.lastRetSeq)
	w.U32(c.lastRetSite)
	c.l1.saveState(w)
	c.pred.SaveState(w)
	c.intFU.SaveState(w, now)
	c.fpFU.SaveState(w, now)
	c.ldFU.SaveState(w, now)
	c.stFU.SaveState(w, now)
	return c.wheel.SaveState(w, now)
}

// LoadState restores the core state saved by SaveState onto a freshly
// constructed core of the same configuration.
func (c *Core) LoadState(r *snapshot.Reader, now uint64) error {
	r.Tag("core")
	c.dispatchSeq = r.U64()
	c.rrFetch = r.Int()
	c.rrRetire = r.Int()
	c.lastRetSeq = r.U64()
	c.lastRetSite = r.U32()
	if err := c.l1.loadState(r); err != nil {
		return err
	}
	if err := c.pred.LoadState(r); err != nil {
		return err
	}
	for _, p := range [...]interface {
		LoadState(*snapshot.Reader, uint64) error
	}{c.intFU, c.fpFU, c.ldFU, c.stFU} {
		if err := p.LoadState(r, now); err != nil {
			return err
		}
	}
	return c.wheel.LoadState(r, now)
}

// saveState encodes the L1 tag store plus its LRU clock.
func (c *l1cache) saveState(w *snapshot.Writer) {
	w.Tag("l1")
	w.U64(c.clock)
	w.U64(uint64(len(c.sets)))
	assoc := 0
	if len(c.sets) > 0 {
		assoc = len(c.sets[0])
	}
	w.Int(assoc)
	for _, set := range c.sets {
		for i := range set {
			wy := &set[i]
			w.U64(wy.tag)
			w.Bool(wy.valid)
			w.Bool(wy.dirty)
			w.U64(wy.lru)
		}
	}
}

// loadState restores the L1 tag store; geometry must match the chip's.
func (c *l1cache) loadState(r *snapshot.Reader) error {
	r.Tag("l1")
	c.clock = r.U64()
	nsets := r.Len(18)
	assoc := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	wantAssoc := 0
	if len(c.sets) > 0 {
		wantAssoc = len(c.sets[0])
	}
	if nsets != len(c.sets) || assoc != wantAssoc {
		return fmt.Errorf("%w: L1 geometry %d sets/assoc %d, chip has %d/%d", snapshot.ErrCorrupt, nsets, assoc, len(c.sets), wantAssoc)
	}
	for _, set := range c.sets {
		for i := range set {
			wy := &set[i]
			wy.tag = r.U64()
			wy.valid = r.Bool()
			wy.dirty = r.Bool()
			wy.lru = r.U64()
		}
	}
	return r.Err()
}
