package core

import (
	"testing"
)

// The core's end-to-end behaviour is exercised through internal/sim
// (behavior_test.go, smt_test.go); these unit tests cover the pieces with
// interesting local invariants: the write-back L1 and the register
// enumeration the renamer depends on.

func TestL1FillProbeInvalidate(t *testing.T) {
	c := newL1(64<<10, 2, 64)
	if c.probe(0x1000) {
		t.Fatal("empty cache hit")
	}
	c.fill(0x1000, false)
	if !c.probe(0x1000) {
		t.Fatal("filled line missing")
	}
	c.markDirty(0x1000)
	if dirty := c.invalidate(0x1000); !dirty {
		t.Fatal("invalidate lost the dirty bit")
	}
	if c.probe(0x1000) {
		t.Fatal("line survived invalidate")
	}
	if c.invalidate(0x1000) {
		t.Fatal("double invalidate reported dirty")
	}
}

func TestL1EvictsLRUAndReportsDirtyVictim(t *testing.T) {
	c := newL1(2*64*2, 2, 64) // 2 sets × 2 ways
	// Three lines mapping to the same set (set stride = 128 bytes).
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.fill(a, false)
	c.fill(b, false)
	c.markDirty(a)
	c.probe(a) // make b the LRU
	victim, dirty := c.fill(d, false)
	if victim != b || dirty {
		t.Fatalf("victim = %#x dirty=%v, want %#x clean", victim, dirty, b)
	}
	if !c.probe(a) || !c.probe(d) || c.probe(b) {
		t.Fatal("wrong residency after eviction")
	}
	// Now evict the dirty line.
	c.probe(d)
	victim, dirty = c.fill(b, false)
	if victim != a || !dirty {
		t.Fatalf("victim = %#x dirty=%v, want %#x dirty", victim, dirty, a)
	}
}

func TestSourceRegsIncludeImplicitControlRegs(t *testing.T) {
	// Every vector operate must depend on vl; strided memory on vs; masked
	// execution on vm plus the merged destination.
	find := func(regs [6]isaReg, want isaReg) bool {
		for _, r := range regs {
			if r == want {
				return true
			}
		}
		return false
	}
	vv := mkInst(opVADDT)
	if !find(sourceRegs(&vv), regVL) {
		t.Error("VV op must read vl")
	}
	sm := mkInst(opVLDQ)
	if !find(sourceRegs(&sm), regVS) || !find(sourceRegs(&sm), regVL) {
		t.Error("SM op must read vl and vs")
	}
	masked := mkInst(opVADDT)
	masked.Masked = true
	srcs := sourceRegs(&masked)
	if !find(srcs, regVM) {
		t.Error("masked op must read vm")
	}
	if !find(srcs, masked.Dst) {
		t.Error("masked op must merge through its old destination")
	}
	fma := mkInst(opVFMAT)
	if !find(sourceRegs(&fma), fma.Dst) {
		t.Error("FMA must read its accumulator")
	}
}

func TestDestRegsForControlOps(t *testing.T) {
	if destRegs(&setvlInst)[0] != regVL {
		t.Error("setvl writes vl")
	}
	if destRegs(&setvmInst)[0] != regVM {
		t.Error("setvm writes vm")
	}
	if destRegs(&storeInst)[0].Valid() {
		t.Error("stores write no register")
	}
}
