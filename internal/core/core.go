// Package core is the timing model of the EV8-class scalar core: an 8-wide
// out-of-order machine with the issue limits of Table 3 (peak 8 int / 4 FP
// per cycle, 2 loads + 2 stores), a write-back L1 data cache, a store queue
// draining through a write buffer, up to 64 outstanding misses, and the
// narrow Vbox interface of §3.3 — a 3-instruction dispatch bus, two scalar
// operand buses, cooperative retirement, and the DrainM barrier.
//
// The model is trace-driven (values were computed functionally at trace
// time) and dataflow-scheduled: an instruction issues when its producers
// have completed and a functional unit of its class is free. Wrong-path
// instructions are not simulated; branch mispredictions charge the
// fetch-redirect penalty, which is the first-order effect for these codes.
package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/l2"
	"repro/internal/metrics"
	"repro/internal/pipe"
	"repro/internal/sched"
	"repro/internal/vasm"
)

// Config sets the core's widths and structure sizes.
type Config struct {
	FetchWidth  int
	RetireWidth int
	ROBSize     int

	IntWidth   int // integer issues per cycle
	FPWidth    int // floating-point issues per cycle
	LoadWidth  int // loads per cycle
	StoreWidth int // stores per cycle

	MispredictPenalty int

	L1Bytes int
	L1Assoc int
	L1Line  int
	L1Lat   int // load-to-use on an L1 hit

	MSHRs           int // outstanding scalar misses ("at most 64 misses before stalling")
	WriteBuffer     int // write-buffer entries (lines)
	StoreForwardLat int

	DrainPenalty int // replay-trap cost after a DrainM completes

	VBusWidth int // vector instructions dispatched to the Vbox per cycle

	// Faults, when non-nil, is the chip's deterministic fault injector
	// (sim.New installs it); it can freeze the issue stage for a cycle.
	Faults *faults.Injector
}

// VectorUnit is the Vbox as the core sees it across the narrow interface.
type VectorUnit interface {
	// Dispatch hands a renamed vector instruction to the Vbox; false means
	// the Vbox queue is full this cycle.
	Dispatch(cy uint64, u *pipe.UOp) bool
	// CanDispatch reports whether Dispatch would currently accept u, without
	// side effects. The fast-forward lookahead needs this to distinguish real
	// Vbox backpressure (queue full, registers exhausted — cleared only by
	// Vbox events) from the core's own per-cycle V-bus width limit, which
	// clears on the very next cycle.
	CanDispatch(u *pipe.UOp) bool
	// MarkReady tells the Vbox the op's last operand arrived at cycle cy.
	MarkReady(cy uint64, u *pipe.UOp)
	// Tick advances the Vbox one cycle.
	Tick(cy uint64)
	// Busy reports in-flight Vbox work.
	Busy() bool
}

// threadState is the per-hardware-thread front-end and retirement state.
// The core is SMT-capable (§3.3: supporting the SMT paradigm was a design
// constraint the Vbox had to meet); the paper's evaluation runs one thread.
type threadState struct {
	id     uint8
	trace  *vasm.Trace
	halted bool

	rob    []*pipe.UOp // per-thread reorder buffer
	rename [isa.NumFlatRegs]*pipe.UOp

	// Frontend stall state.
	fetchStallUntil uint64
	pendingRedirect *pipe.UOp // mispredicted branch awaiting resolution
	drainOp         *pipe.UOp // DrainM awaiting write-buffer purge
	nextFetch       *pipe.UOp // staged instruction that could not dispatch

	// Store queue entries awaiting disambiguation checks: maps quadword
	// address to the youngest in-flight store writing it.
	storeByAddr map[uint64]*pipe.UOp

	// addrOffset tags this thread's addresses in the shared memory
	// hierarchy (each SMT thread has its own address space; the timing
	// models must not alias them).
	addrOffset uint64
}

// Core is the scalar core model.
type Core struct {
	cfg Config
	l2  *l2.L2
	vu  VectorUnit // nil for pure-EV8 configurations

	// Registered counter handles (core.* namespace).
	flops, memOps, otherOps metrics.Counter
	scalarIns, vectorIns    metrics.Counter
	vecOps                  metrics.Counter
	l1Hits, l1Misses        metrics.Counter
	branches, mispredicts   metrics.Counter
	drainMs                 metrics.Counter

	threads  []*threadState
	rrFetch  int // round-robin fetch pointer
	rrRetire int

	dispatchSeq uint64 // global age order across threads

	ready   pipe.ReadyQueue
	blocked []*pipe.UOp // ready but structurally stalled this cycle
	wheel   *sched.Wheel
	pred    *pipe.Predictor

	// completeFn is the method value of onComplete, bound once so every
	// completion event schedules without a closure allocation.
	completeFn func(uint64, any)

	intFU, fpFU, ldFU, stFU *pipe.FUPool

	// Write buffer: retired stores draining to the cache hierarchy.
	writeBuf   []wbEntry
	wbInFlight int

	l1       *l1cache
	mshr     map[uint64][]*pipe.UOp // line -> loads waiting on its fill
	mshrPref map[uint64]bool        // lines with a prefetch-only fill in flight

	uopPool []*pipe.UOp // recycled records (safe: all references cleared at retire)

	// Invariant checking (nil when disabled).
	chk         *check.Checker
	lastRetSeq  uint64 // sequence number of the most recently retired op
	lastRetSite uint32 // static-site id (PC stand-in) of that op
	retCount    uint64 // retirements since checking began (paces inclusion walks)
}

type wbEntry struct {
	addr uint64
	wh64 bool
}

// New builds a core bound to an L2 and an optional vector unit, registering
// its counters and occupancy gauges under the registry's core namespace.
func New(cfg Config, reg *metrics.Registry, l2c *l2.L2, vu VectorUnit) *Core {
	c := &Core{
		cfg:      cfg,
		l2:       l2c,
		vu:       vu,
		wheel:    sched.NewWheel(),
		pred:     pipe.NewPredictor(),
		intFU:    pipe.NewFUPool(cfg.IntWidth),
		fpFU:     pipe.NewFUPool(cfg.FPWidth),
		ldFU:     pipe.NewFUPool(cfg.LoadWidth),
		stFU:     pipe.NewFUPool(cfg.StoreWidth),
		l1:       newL1(cfg.L1Bytes, cfg.L1Assoc, cfg.L1Line),
		mshr:     make(map[uint64][]*pipe.UOp),
		mshrPref: make(map[uint64]bool),
	}
	c.completeFn = c.onComplete
	l2c.OnPBitInvalidate = c.invalidateL1
	m := reg.Scope("core")
	c.flops = m.Counter("flops")
	c.memOps = m.Counter("mem_ops")
	c.otherOps = m.Counter("other_ops")
	c.scalarIns = m.Counter("scalar_ins")
	c.vectorIns = m.Counter("vector_ins")
	c.vecOps = m.Counter("vec_ops")
	c.l1Hits = m.Counter("l1_hits")
	c.l1Misses = m.Counter("l1_misses")
	c.branches = m.Counter("branches")
	c.mispredicts = m.Counter("branch_mispredicts")
	c.drainMs = m.Counter("drain_ms")
	m.Gauge("rob", "Reorder-buffer entries in flight (all threads).",
		func(uint64) int { rob, _, _, _, _ := c.Depths(); return rob })
	m.Gauge("ready", "Uops ready to issue.",
		func(uint64) int { return c.ready.Len() })
	m.Gauge("blocked", "Ready uops structurally stalled this cycle.",
		func(uint64) int { return len(c.blocked) })
	m.Gauge("writebuf", "Retired stores draining to the cache hierarchy.",
		func(uint64) int { return len(c.writeBuf) })
	m.Gauge("mshr", "Outstanding L1 miss-status registers.",
		func(uint64) int { return len(c.mshr) })
	return c
}

// Bind attaches a single instruction trace (thread 0) to execute.
func (c *Core) Bind(tr *vasm.Trace) { c.BindSMT([]*vasm.Trace{tr}) }

// BindSMT attaches one trace per hardware thread. Each thread gets a
// private address-space tag so the shared caches do not alias the threads'
// identical virtual layouts.
func (c *Core) BindSMT(trs []*vasm.Trace) {
	c.threads = c.threads[:0]
	for i, tr := range trs {
		c.threads = append(c.threads, &threadState{
			id:          uint8(i),
			trace:       tr,
			storeByAddr: make(map[uint64]*pipe.UOp),
			addrOffset:  uint64(i) << 44,
		})
	}
}

// SetChecker attaches the invariant checker. The core owns the invariant
// logic (it has the microarchitectural state); the checker owns the verdict
// and the event history.
func (c *Core) SetChecker(chk *check.Checker) { c.chk = chk }

// Depths reports the core's queue occupancy for failure diagnostics.
func (c *Core) Depths() (rob, ready, blocked, writeBuf, mshr int) {
	for _, t := range c.threads {
		rob += len(t.rob)
	}
	return rob, c.ready.Len(), len(c.blocked), len(c.writeBuf), len(c.mshr)
}

// LastRetired returns the sequence number and static-site id (the PC
// stand-in) of the most recently retired instruction.
func (c *Core) LastRetired() (seq uint64, site uint32) {
	return c.lastRetSeq, c.lastRetSite
}

// Halted reports whether every thread's HALT marker has retired.
func (c *Core) Halted() bool {
	for _, t := range c.threads {
		if !t.halted {
			return false
		}
	}
	return len(c.threads) > 0
}

// Busy reports whether instructions are still in flight.
func (c *Core) Busy() bool {
	for _, t := range c.threads {
		if len(t.rob) > 0 {
			return true
		}
	}
	return len(c.writeBuf) > 0 || c.wbInFlight > 0 || c.wheel.Pending()
}

// invalidateL1 services a P-bit invalidate from the L2; returns true when
// the line was dirty in the L1 (forcing a write-through).
func (c *Core) invalidateL1(line uint64) bool {
	dirty := c.l1.invalidate(line)
	return dirty
}

// Tick advances the core one cycle. Order within the cycle: completions,
// retire, issue, write-buffer drain, fetch/rename/dispatch.
func (c *Core) Tick(cy uint64) {
	c.wheel.Advance(cy)
	c.retire(cy)
	c.issue(cy)
	c.drainWriteBuffer(cy)
	c.fetch(cy)
}

// NextWake returns the earliest cycle after now at which Tick can change any
// core state, for the idle-cycle fast-forward. It must be conservative in
// exactly one direction: returning a cycle EARLIER than the next state change
// merely costs a wasted tick, while a later one would skip work. Whenever the
// core can act on the very next cycle it returns now+1; when every in-flight
// instruction is parked on a completion event it returns the next event (or
// time-based unstall) cycle; ^uint64(0) means the core is fully drained.
func (c *Core) NextWake(now uint64) uint64 {
	// The write buffer drains one entry per cycle.
	if len(c.writeBuf) > 0 {
		return now + 1
	}
	// A completed ROB head retires next cycle.
	for _, t := range c.threads {
		if len(t.rob) > 0 && t.rob[0].State == pipe.StateDone {
			return now + 1
		}
	}
	// Ready ops migrate toward issue while the blocked list has room.
	if c.ready.Len() > 0 && len(c.blocked) < 64 {
		return now + 1
	}
	// Structurally blocked ops: a load parked on a full MSHR file wakes only
	// when a fill event frees an entry, but anything else (per-cycle FU width,
	// an L1 hit, store forwarding, an outstanding fill to attach to) can
	// proceed on the next cycle. Loads are retried oldest-first, and a stuck
	// load still consumes load-issue width on every retry, so younger blocked
	// loads behind a full width's worth of stuck ones are frozen too.
	loadWidth := c.cfg.LoadWidth
	for _, u := range c.blocked {
		info := u.Inst.Info()
		if !info.IsLoad {
			return now + 1 // FP/int/store: per-cycle or busy-until hazards
		}
		if loadWidth <= 0 {
			break // width-starved behind stuck loads: frozen until a fill
		}
		if u.Inst.IsPrefetch() || len(c.mshr) < c.cfg.MSHRs {
			return now + 1
		}
		addr := uint64(0)
		if len(u.Eff.Addrs) > 0 {
			addr = u.Eff.Addrs[0]
		}
		line := c.l1line(addr)
		if _, pending := c.mshr[line]; pending {
			return now + 1 // would attach to the outstanding fill
		}
		if c.l1.present(line) {
			return now + 1 // L1 hit once it gets an issue slot
		}
		if st, ok := c.threads[u.Inst.Thread].storeByAddr[addr]; ok && st.Seq < u.Seq {
			return now + 1 // store-to-load forwarding
		}
		loadWidth-- // MSHR-stuck: burns an issue slot every retry cycle
	}
	wake := c.wheel.Next()
	// Front end: a fetchable thread makes progress every cycle; stalled
	// threads contribute their unstall cycle when it is time-based.
	for _, t := range c.threads {
		if t.halted || t.trace == nil || t.pendingRedirect != nil {
			continue // redirect resolves via the branch's completion event
		}
		if t.drainOp != nil {
			if len(c.writeBuf) == 0 && c.wbInFlight == 0 {
				return now + 1
			}
			continue // waiting on write drains (L2/Zbox events)
		}
		if t.fetchStallUntil > now {
			if t.fetchStallUntil < wake {
				wake = t.fetchStallUntil
			}
			continue
		}
		if len(t.rob) >= c.cfg.ROBSize/len(c.threads) {
			continue // ROB full: unblocked by retire, i.e. a completion event
		}
		if t.nextFetch != nil {
			// An op staged in nextFetch usually just saturated the per-cycle
			// V-bus width — dispatch retries successfully next cycle. Only
			// genuine Vbox backpressure (queue full, registers exhausted) is
			// event-driven: slots free while the Vbox issues or completes,
			// which its own NextWake (or a core completion event) covers.
			if c.vu.CanDispatch(t.nextFetch) {
				return now + 1
			}
			continue
		}
		return now + 1
	}
	if wake <= now {
		wake = now + 1
	}
	return wake
}

// ---- retire ----

func (c *Core) retire(cy uint64) {
	retired := 0
	// Per-thread in-order retirement, round-robin across threads up to the
	// shared retire width.
	for range c.threads {
		t := c.threads[c.rrRetire%len(c.threads)]
		c.rrRetire++
		for retired < c.cfg.RetireWidth && len(t.rob) > 0 {
			u := t.rob[0]
			if u.State != pipe.StateDone {
				break
			}
			in := &u.Inst
			info := in.Info()
			stop := false
			switch {
			case in.Op == isa.OpHALT:
				t.halted = true
			case in.Op == isa.OpDRAINM:
				// Handled at fetch/execute; retirement is the replay point.
			case info.IsStore && !in.IsVector():
				// Retired stores move to the write buffer "without
				// informing either the L1 or the L2" (§3.4) and drain
				// asynchronously.
				if len(c.writeBuf) >= c.cfg.WriteBuffer {
					stop = true // write buffer full: stall this thread
					break
				}
				if len(u.Eff.Addrs) > 0 {
					addr := u.Eff.Addrs[0]
					if c.chk.Enabled() {
						// Store-queue consistency: the disambiguation map
						// holds the YOUNGEST in-flight store per address. The
						// retiring store is its thread's oldest in-flight op,
						// so an older mapped store means forwarding could
						// have supplied stale data to some load.
						if st, ok := t.storeByAddr[addr]; ok && st.Seq < u.Seq {
							c.chk.Failf("store-queue", cy,
								"retiring store seq %d finds older store seq %d still mapped at %#x",
								u.Seq, st.Seq, addr)
						}
					}
					c.writeBuf = append(c.writeBuf, wbEntry{addr: addr, wh64: in.Op == isa.OpWH64})
					if st, ok := t.storeByAddr[addr]; ok && st == u {
						delete(t.storeByAddr, addr)
					}
				}
			}
			if stop {
				break
			}
			c.countRetired(u)
			c.lastRetSeq, c.lastRetSite = u.Seq, u.Site
			if c.chk.Enabled() {
				c.chk.RetireInOrder(cy, int(t.id), u.Seq)
				c.retCount++
				// L1⊆L2 inclusion is a whole-cache property; walking it per
				// retirement would swamp the run, so sample every 256th.
				if c.retCount&255 == 0 {
					c.checkInclusion(cy)
				}
			}
			u.State = pipe.StateRetired
			t.rob = t.rob[1:]
			retired++
			c.recycle(t, u)
		}
	}
}

func (c *Core) countRetired(u *pipe.UOp) {
	in := &u.Inst
	info := in.Info()
	if in.IsVector() {
		c.vectorIns.Inc()
		n := uint64(u.Eff.Active)
		c.vecOps.Add(max(n, 1))
		switch {
		case info.IsLoad || info.IsStore:
			c.memOps.Add(n)
		case info.IsFlop:
			c.flops.Add(n * info.Flops())
		case info.Group == isa.GVC:
			c.otherOps.Inc()
		default:
			c.otherOps.Add(n) // vector integer/logical ops count as "other"
		}
		return
	}
	c.scalarIns.Inc()
	switch {
	case info.IsLoad || info.IsStore:
		c.memOps.Inc()
	case info.IsFlop:
		c.flops.Inc()
	default:
		c.otherOps.Inc()
	}
	if info.IsBranch {
		c.branches.Inc()
	}
}

// recycle returns a retired uop to the pool once nothing can reference it:
// consumers were drained at completion, the store queue entry was removed at
// retire, and any rename-table entry still naming it is cleared here.
func (c *Core) recycle(t *threadState, u *pipe.UOp) {
	if len(u.Consumers) != 0 {
		return // defensive: somebody still waits on it
	}
	for _, r := range destRegs(&u.Inst) {
		if r.Valid() && !r.IsZero() && t.rename[r.Flat()] == u {
			t.rename[r.Flat()] = nil
		}
	}
	cons := u.Consumers[:0]
	*u = pipe.UOp{}
	u.Consumers = cons // the backing array survives recycling
	c.uopPool = append(c.uopPool, u)
}

// checkInclusion validates L1 ⊆ L2: every non-prefetch scalar access marks
// its L2 line with the P-bit, and evicting a P-bit line invalidates the L1
// copy — so a valid L1 line with no L2 backing means that protocol broke.
func (c *Core) checkInclusion(cy uint64) {
	c.l1.walk(func(line uint64) bool {
		if !c.l2.Present(line) {
			c.chk.Failf("l1-inclusion", cy, "L1 holds line %#x but the L2 does not", line)
			return false
		}
		return true
	})
}

// ---- issue ----

func (c *Core) issue(cy uint64) {
	if c.cfg.Faults.StallFUs(cy) {
		return // injected issue-logic stall: every FU pool frozen this cycle
	}
	issued := 0
	budget := c.cfg.FetchWidth // total issue width (8, Table 3 "Core Issue")
	// Structurally blocked ops from earlier cycles are oldest: retry them
	// in place first (no heap churn), compacting the survivors.
	keep := c.blocked[:0]
	for i, u := range c.blocked {
		if issued < budget && c.tryIssue(cy, u) {
			issued++
		} else {
			keep = append(keep, u)
		}
		_ = i
	}
	c.blocked = keep
	scanned := 0
	for c.ready.Len() > 0 && issued < budget && scanned < 4*budget && len(c.blocked) < 64 {
		u := c.ready.Pop()
		scanned++
		if c.tryIssue(cy, u) {
			issued++
		} else {
			c.blocked = append(c.blocked, u)
		}
	}
}

func (c *Core) tryIssue(cy uint64, u *pipe.UOp) bool {
	in := &u.Inst
	info := in.Info()
	switch {
	case info.IsLoad:
		return c.issueLoad(cy, u)
	case info.IsStore:
		// Stores "execute" when address and data are ready; memory is
		// touched after retirement via the write buffer.
		if !c.stFU.TryIssue(cy, 1) {
			return false
		}
		c.complete(cy+1, u)
		return true
	case info.FU == isa.FUFPAdd || info.FU == isa.FUFPMul || info.FU == isa.FUFPDiv:
		occ := 1
		if info.Unpipelined {
			occ = info.Latency
		}
		if !c.fpFU.TryIssue(cy, occ) {
			return false
		}
		c.complete(cy+uint64(info.Latency), u)
		return true
	default:
		// Integer ALU/multiplier, branches, HALT, DRAINM-as-nop.
		occ := 1
		if info.Unpipelined {
			occ = info.Latency
		}
		if !c.intFU.TryIssue(cy, occ) {
			return false
		}
		c.complete(cy+uint64(info.Latency), u)
		if info.IsBranch {
			t := c.threads[u.Inst.Thread]
			if t.pendingRedirect == u {
				// Mispredicted branch resolves: redirect this thread's
				// front end.
				t.pendingRedirect = nil
				t.fetchStallUntil = cy + uint64(info.Latency) + uint64(c.cfg.MispredictPenalty)
			}
		}
		return true
	}
}

func (c *Core) issueLoad(cy uint64, u *pipe.UOp) bool {
	if !c.ldFU.TryIssue(cy, 1) {
		return false
	}
	addr := uint64(0)
	if len(u.Eff.Addrs) > 0 {
		addr = u.Eff.Addrs[0]
	}
	// Store-to-load forwarding: an older in-flight store to the same
	// quadword supplies the data.
	if st, ok := c.threads[u.Inst.Thread].storeByAddr[addr]; ok && st.Seq < u.Seq {
		if st.State == pipe.StateDone || st.State == pipe.StateRetired {
			c.complete(cy+uint64(c.cfg.StoreForwardLat), u)
		} else {
			// Wait for the store's data: chain on its completion.
			st.Consumers = append(st.Consumers, u)
			u.Deps++
			u.State = pipe.StateWaiting
		}
		return true
	}
	line := c.l1line(addr)
	if u.Inst.IsPrefetch() {
		// Non-binding prefetch: retires immediately; the line arrives in
		// the background (dropped if the MSHRs are saturated).
		if _, pending := c.mshr[line]; !pending && !c.l1.probe(line) && len(c.mshr) < c.cfg.MSHRs {
			c.mshr[line] = nil
			c.mshrPref[line] = true
			c.l2.ScalarRead(cy, addr, func(fillCy uint64) { c.fillL1(fillCy, line) })
		}
		c.complete(cy+1, u)
		return true
	}
	if waiters, pending := c.mshr[line]; pending {
		// Miss to an already-outstanding line: attach to the MSHR.
		c.mshr[line] = append(waiters, u)
		delete(c.mshrPref, line)
		u.State = pipe.StateIssued
		return true
	}
	if c.l1.probe(line) {
		c.l1Hits.Inc()
		c.complete(cy+uint64(c.cfg.L1Lat), u)
		return true
	}
	// L1 miss: take an MSHR and fetch the line from the L2. The 64-entry
	// bound is the paper's "at most 64 misses before stalling".
	if len(c.mshr) >= c.cfg.MSHRs {
		return false // stall: retry next cycle
	}
	c.l1Misses.Inc()
	c.mshr[line] = []*pipe.UOp{u}
	c.l2.ScalarRead(cy, addr, func(fillCy uint64) { c.fillL1(fillCy, line) })
	u.State = pipe.StateIssued
	return true
}

// fillL1 installs a returned line into the L1 and completes the loads that
// slept on its MSHR entry.
func (c *Core) fillL1(cy uint64, line uint64) {
	waiters := c.mshr[line]
	delete(c.mshr, line)
	delete(c.mshrPref, line)
	if victim, dirty := c.l1.fill(line, false); dirty {
		c.l2.ScalarWrite(cy, victim, nil)
	}
	for _, u := range waiters {
		c.complete(cy+1, u)
	}
}

func (c *Core) l1line(addr uint64) uint64 { return addr &^ uint64(c.cfg.L1Line-1) }

// complete schedules u's completion at cycle cy (immediately if cy is the
// current cycle's event horizon).
func (c *Core) complete(cy uint64, u *pipe.UOp) {
	u.State = pipe.StateIssued
	c.wheel.AtCall(cy, c.completeFn, u)
}

// onComplete is the wheel callback behind complete, stored once in
// completeFn so scheduling a completion allocates nothing.
func (c *Core) onComplete(cy uint64, a any) {
	u := a.(*pipe.UOp)
	u.State = pipe.StateDone
	u.DoneCyc = cy
	c.Wake(cy, u)
}

// Wake propagates a completed producer to its consumers. It is exported for
// the Vbox, which calls it when vector instructions complete (their
// consumers may be scalar — e.g. a VEXTR feeding address arithmetic).
func (c *Core) Wake(cy uint64, u *pipe.UOp) {
	for _, cons := range u.Consumers {
		cons.Deps--
		if cons.Deps == 0 {
			cons.MarkReady(cy)
			if cons.Inst.IsVector() {
				if c.vu != nil {
					c.vu.MarkReady(cy, cons)
				}
			} else {
				c.ready.Push(cons)
			}
		}
	}
	u.Consumers = u.Consumers[:0] // keep capacity for the recycled record
}

// VectorDone is the Vbox's completion callback (the VCU reporting
// instruction identifiers back to the core, §3.3).
func (c *Core) VectorDone(cy uint64, u *pipe.UOp) {
	u.State = pipe.StateDone
	u.DoneCyc = cy
	c.Wake(cy, u)
}

// ---- write buffer ----

func (c *Core) drainWriteBuffer(cy uint64) {
	if len(c.writeBuf) == 0 {
		return
	}
	e := c.writeBuf[0]
	c.writeBuf = c.writeBuf[1:]
	line := c.l1line(e.addr)
	switch {
	case e.wh64:
		c.wbInFlight++
		c.l2.WH64(cy, e.addr, func(uint64) { c.wbInFlight-- })
	case c.l1.probe(line):
		// Write-back L1: the store lands in the L1 and stays dirty there.
		c.l1.markDirty(line)
	default:
		c.wbInFlight++
		c.l2.ScalarWrite(cy, e.addr, func(uint64) { c.wbInFlight-- })
	}
}

// ---- fetch / rename / dispatch ----

// fetch picks one runnable thread per cycle (round-robin — the coarse
// policy is enough for the throughput questions SMT mode answers) and
// fetches up to the full width from it.
func (c *Core) fetch(cy uint64) {
	for range c.threads {
		t := c.threads[c.rrFetch%len(c.threads)]
		c.rrFetch++
		if t.trace == nil || t.halted || cy < t.fetchStallUntil || t.pendingRedirect != nil {
			continue
		}
		if t.drainOp != nil {
			// DrainM: wait until the write buffer has fully purged, then
			// pay the replay trap and resume.
			if len(c.writeBuf) == 0 && c.wbInFlight == 0 {
				c.complete(cy+1, t.drainOp)
				t.drainOp = nil
				t.fetchStallUntil = cy + uint64(c.cfg.DrainPenalty)
			}
			continue
		}
		c.fetchThread(cy, t)
		return
	}
}

func (c *Core) fetchThread(cy uint64, t *threadState) {
	vdispatched := 0
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if len(t.rob) >= c.cfg.ROBSize/len(c.threads) {
			return
		}
		u := t.nextFetch
		t.nextFetch = nil
		if u == nil {
			d := t.trace.Next()
			if d == nil {
				return
			}
			if n := len(c.uopPool); n > 0 {
				u = c.uopPool[n-1]
				c.uopPool = c.uopPool[:n-1]
			} else {
				u = &pipe.UOp{}
			}
			c.dispatchSeq++
			u.Seq, u.Site, u.Inst, u.Eff, u.FetchCyc = c.dispatchSeq, d.Site, d.Inst, d.Eff, cy
			u.Inst.Thread = t.id
			if t.addrOffset != 0 && len(u.Eff.Addrs) > 0 {
				// Tag this thread's addresses so the shared memory
				// hierarchy does not alias the threads' address spaces.
				addrs := make([]uint64, len(u.Eff.Addrs))
				for i, a := range u.Eff.Addrs {
					addrs[i] = a + t.addrOffset
				}
				u.Eff.Addrs = addrs
				u.Eff.Base += t.addrOffset
			}
		}
		if u.Inst.IsVector() {
			if c.vu == nil {
				panic(fmt.Sprintf("core: vector instruction %s on a configuration without a Vbox", &u.Inst))
			}
			if vdispatched >= c.cfg.VBusWidth || !c.vu.Dispatch(cy, u) {
				t.nextFetch = u // bus saturated or Vbox queue full
				return
			}
			vdispatched++
		}
		c.renameOp(cy, t, u)
		t.rob = append(t.rob, u)

		info := u.Inst.Info()
		switch {
		case info.IsBranch:
			if c.pred.Predict(u.Site^(uint32(t.id)<<28), u.Eff.Taken) {
				c.mispredicts.Inc()
				t.pendingRedirect = u
				c.finishRename(cy, u)
				return // no fetch past a mispredicted branch
			}
		case u.Inst.Op == isa.OpDRAINM:
			c.drainMs.Inc()
			t.drainOp = u
			c.finishRename(cy, u)
			return
		}
		c.finishRename(cy, u)
	}
}

// renameOp links u's dataflow sources against its thread's rename table.
func (c *Core) renameOp(cy uint64, t *threadState, u *pipe.UOp) {
	for _, r := range sourceRegs(&u.Inst) {
		if !r.Valid() || r.IsZero() {
			continue
		}
		if prod := t.rename[r.Flat()]; prod != nil &&
			prod.State != pipe.StateDone && prod.State != pipe.StateRetired {
			prod.Consumers = append(prod.Consumers, u)
			u.Deps++
		}
	}
	for _, r := range destRegs(&u.Inst) {
		if r.Valid() && !r.IsZero() {
			t.rename[r.Flat()] = u
		}
	}
	if info := u.Inst.Info(); info.IsStore && !u.Inst.IsVector() && len(u.Eff.Addrs) > 0 {
		t.storeByAddr[u.Eff.Addrs[0]] = u
	}
}

// finishRename queues the op for issue once its dependence count is known.
func (c *Core) finishRename(cy uint64, u *pipe.UOp) {
	if u.Inst.Op == isa.OpDRAINM {
		return // completes via the drain state machine
	}
	if u.Deps == 0 {
		u.MarkReady(cy)
		if u.Inst.IsVector() {
			c.vu.MarkReady(cy, u)
		} else {
			c.ready.Push(u)
		}
	} else {
		u.State = pipe.StateWaiting
	}
}

// sourceRegs lists the architectural registers an instruction reads,
// including the implicit vector control registers (vl for every vector
// operation, vs for strided memory, vm for masked execution — the reason
// the Vbox renames vm, §2). The fixed-size return avoids a per-instruction
// allocation on the hottest path.
func sourceRegs(in *isa.Inst) [6]isa.Reg {
	var out [6]isa.Reg
	n := 0
	info := in.Info()
	add := func(r isa.Reg) {
		if r.Valid() {
			out[n] = r
			n++
		}
	}
	switch info.Group {
	case isa.GScalar:
		add(in.Src1)
		add(in.Src2)
	case isa.GVV, isa.GVS:
		add(in.Src1)
		add(in.Src2)
		add(isa.VL)
		if in.Masked || in.Op == isa.OpVMERG {
			add(isa.VM)
			add(in.Dst) // partial write: old destination merges through
		} else if in.Op == isa.OpVFMAT || in.Op == isa.OpVSFMAT {
			add(in.Dst) // the destination is the accumulator
		}
	case isa.GSM:
		add(in.Src1) // store data
		add(in.Src2) // base
		add(isa.VL)
		add(isa.VS)
		if in.Masked {
			add(isa.VM)
			if info.IsLoad {
				add(in.Dst)
			}
		}
	case isa.GRM:
		add(in.Src1)
		add(in.Src2)
		add(in.Idx)
		add(isa.VL)
		if in.Masked {
			add(isa.VM)
			if info.IsLoad {
				add(in.Dst)
			}
		}
	case isa.GVC:
		add(in.Src1)
		add(in.Src2)
		if in.Op == isa.OpVINS {
			add(in.Dst)
		}
	}
	return out
}

// destRegs lists the architectural registers an instruction writes.
func destRegs(in *isa.Inst) [1]isa.Reg {
	switch in.Op {
	case isa.OpSETVL:
		return [1]isa.Reg{isa.VL}
	case isa.OpSETVS:
		return [1]isa.Reg{isa.VS}
	case isa.OpSETVM, isa.OpVCLRM:
		return [1]isa.Reg{isa.VM}
	}
	if in.Info().IsStore || in.Info().IsBranch {
		return [1]isa.Reg{}
	}
	return [1]isa.Reg{in.Dst}
}

// ResetHalt re-arms the core after a HALT so another trace phase can run on
// the same machine state (used for warmup-then-measure experiments).
func (c *Core) ResetHalt() {
	for _, t := range c.threads {
		t.halted = false
	}
}
