package core

import "repro/internal/isa"

// Small aliases keeping core_test readable without repeating isa paths.

type isaReg = isa.Reg

var (
	regVL = isa.VL
	regVS = isa.VS
	regVM = isa.VM
)

const (
	opVADDT = isa.OpVADDT
	opVLDQ  = isa.OpVLDQ
	opVFMAT = isa.OpVFMAT
)

func mkInst(op isa.Op) isa.Inst {
	in := isa.Inst{Op: op, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)}
	if op == opVLDQ {
		in = isa.Inst{Op: op, Dst: isa.V(2), Src2: isa.R(1)}
	}
	return in
}

var (
	setvlInst = isa.Inst{Op: isa.OpSETVL, Src1: isa.R(1)}
	setvmInst = isa.Inst{Op: isa.OpSETVM, Src1: isa.V(1)}
	storeInst = isa.Inst{Op: isa.OpSTQ, Src1: isa.R(1), Src2: isa.R(2)}
)
