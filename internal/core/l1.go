package core

// l1cache is the EV8 first-level data cache: small (64 KB, Table 3), 2-way,
// write-back. It exists in the model for two reasons: it gives the scalar
// baseline its fast path, and it participates in the P-bit scalar↔vector
// coherency protocol (invalidates arrive from the L2 when the Vbox touches
// a line the core holds).
type l1cache struct {
	sets   [][]l1way
	mask   uint64
	lgLine uint
	clock  uint64
}

type l1way struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

func newL1(bytes, assoc, line int) *l1cache {
	nsets := bytes / (line * assoc)
	c := &l1cache{sets: make([][]l1way, nsets), mask: uint64(nsets - 1)}
	for line > 1 {
		line >>= 1
		c.lgLine++
	}
	for i := range c.sets {
		c.sets[i] = make([]l1way, assoc)
	}
	return c
}

func (c *l1cache) set(line uint64) []l1way {
	return c.sets[(line>>c.lgLine)&c.mask]
}

// probe reports whether the line is present (and refreshes its LRU state).
func (c *l1cache) probe(line uint64) bool {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			c.clock++
			s[i].lru = c.clock
			return true
		}
	}
	return false
}

// present reports whether the line is cached WITHOUT touching LRU state —
// for the idle-cycle fast-forward's lookahead, which must not perturb the
// replacement order probe maintains.
func (c *l1cache) present(line uint64) bool {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			return true
		}
	}
	return false
}

// markDirty marks a present line dirty (store hit).
func (c *l1cache) markDirty(line uint64) {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			s[i].dirty = true
			return
		}
	}
}

// fill installs a line, returning the victim's address and dirtiness when a
// dirty line had to be evicted (the caller writes it through to the L2).
func (c *l1cache) fill(line uint64, dirty bool) (victim uint64, victimDirty bool) {
	s := c.set(line)
	v := 0
	for i := range s {
		if !s[i].valid {
			v = i
			break
		}
		if s[i].lru < s[v].lru {
			v = i
		}
	}
	victim, victimDirty = s[v].tag, s[v].valid && s[v].dirty
	c.clock++
	s[v] = l1way{tag: line, valid: true, dirty: dirty, lru: c.clock}
	return victim, victimDirty
}

// walk calls fn for every valid line, stopping early if fn returns false.
// It reads tags only — no LRU touch — so the invariant checker's inclusion
// sweep cannot perturb replacement order.
func (c *l1cache) walk(fn func(line uint64) bool) {
	for _, s := range c.sets {
		for i := range s {
			if s[i].valid && !fn(s[i].tag) {
				return
			}
		}
	}
}

// invalidate removes the line if present, returning whether it was dirty
// (a dirty copy is written through to the L2 by the protocol).
func (c *l1cache) invalidate(line uint64) bool {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			dirty := s[i].dirty
			s[i] = l1way{}
			return dirty
		}
	}
	return false
}
