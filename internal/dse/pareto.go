package dse

import (
	"math"

	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/sim"
)

// Cost is one design point's position in the three-objective space the
// paper trades against itself: delivered speedup (maximize) versus the
// Table 1 power model's watts and the Figure 5 die's mm² (both minimize).
type Cost struct {
	Speedup float64 `json:"speedup"`
	Watts   float64 `json:"watts"`
	MM2     float64 `json:"mm2"`
}

// Dominates reports whether a is weakly better than b on every objective
// and strictly better on at least one. Exact ties dominate nothing.
func (a Cost) Dominates(b Cost) bool {
	if a.Speedup < b.Speedup || a.Watts > b.Watts || a.MM2 > b.MM2 {
		return false
	}
	return a.Speedup > b.Speedup || a.Watts < b.Watts || a.MM2 < b.MM2
}

// Frontier returns the indices of the Pareto-optimal points, in input
// order: every point no other point dominates. Exact ties are all kept —
// two identical costs never dominate each other, so both stay on the
// frontier.
func Frontier(costs []Cost) []int {
	var front []int
	for i, c := range costs {
		dominated := false
		for j, d := range costs {
			if i != j && d.Dominates(c) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// Evaluate computes the static cost axes of a configuration: total watts
// from the §5 power model at the point's own clock, and die mm² from the
// Figure 5 floorplan. The speedup axis comes from simulation and is filled
// in by the sweep runner.
func Evaluate(cfg *sim.Config) (watts, mm2 float64) {
	return power.EstimateFor(cfg).TotalWatts, floorplan.PlanFor(cfg).DieMM2
}

// Geomean returns the geometric mean of xs (the paper's cross-benchmark
// summary statistic). Empty or non-positive inputs yield 0.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
