package dse

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/confhash"
	"repro/internal/sim"
)

func grid2x2() *Spec {
	return &Spec{
		Benches: []string{"dgemm", "fft"},
		Scale:   "test",
		Axes: map[string]Axis{
			"lanes": {Values: []float64{8, 16}},
			"l2_kb": {Values: []float64{4096, 16384}},
		},
	}
}

func TestCanonicalizeDefaultsAndSorting(t *testing.T) {
	s := &Spec{
		Benches: []string{"fft", "dgemm", "fft"},
		Axes:    map[string]Axis{"lanes": {Values: []float64{16, 8, 16}}},
	}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if s.Config != "T" || s.Baseline != "T" || s.Scale != "bench" {
		t.Errorf("defaults: config=%q baseline=%q scale=%q", s.Config, s.Baseline, s.Scale)
	}
	if !reflect.DeepEqual(s.Benches, []string{"dgemm", "fft"}) {
		t.Errorf("benches not sorted+deduped: %v", s.Benches)
	}
	if !reflect.DeepEqual(s.Axes["lanes"].Values, []float64{8, 16}) {
		t.Errorf("axis not sorted+deduped: %v", s.Axes["lanes"].Values)
	}
}

func TestCanonicalizeExpandsRanges(t *testing.T) {
	s := &Spec{
		Benches: []string{"dgemm"},
		Axes:    map[string]Axis{"clock_ghz": {Min: 2, Max: 4, Step: 1}},
	}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Axes["clock_ghz"].Values, []float64{2, 3, 4}) {
		t.Errorf("range expansion: %v", s.Axes["clock_ghz"].Values)
	}
}

func TestCanonicalizeRejections(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		want string // substring the error must carry (field naming)
	}{
		{"unknown knob", &Spec{Benches: []string{"dgemm"},
			Axes: map[string]Axis{"mvl": {Values: []float64{128}}}}, `unknown knob "mvl"`},
		{"bad range", &Spec{Benches: []string{"dgemm"},
			Axes: map[string]Axis{"lanes": {Values: []float64{12}}}}, `knob "lanes"`},
		{"out of range", &Spec{Benches: []string{"dgemm"},
			Axes: map[string]Axis{"clock_ghz": {Values: []float64{99}}}}, `knob "clock_ghz"`},
		{"vector knob on scalar", &Spec{Config: "EV8", Benches: []string{"dgemm"},
			Axes: map[string]Axis{"lanes": {Values: []float64{8}}}}, `knob "lanes"`},
		{"unknown bench", &Spec{Benches: []string{"nope"},
			Axes: map[string]Axis{"lanes": {Values: []float64{8}}}}, "benches"},
		{"unknown config", &Spec{Config: "EV9", Benches: []string{"dgemm"},
			Axes: map[string]Axis{"lanes": {Values: []float64{8}}}}, `unknown config "EV9"`},
		{"no axes", &Spec{Benches: []string{"dgemm"}}, "axes"},
		{"no benches", &Spec{Axes: map[string]Axis{"lanes": {Values: []float64{8}}}}, "benches"},
		{"too many points", &Spec{Benches: []string{"dgemm"},
			Axes: map[string]Axis{"clock_ghz": {Min: 1, Max: 12, Step: 0.001}}}, "exceeds"},
	}
	for _, c := range cases {
		err := c.spec.Canonicalize()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name the field (%q)", c.name, err, c.want)
		}
	}
}

// TestExpandDeterministic pins the determinism contract: the same spec
// expands to the same point order, and the built configs hash to the same
// confhash sequence, across repeated expansions.
func TestExpandDeterministic(t *testing.T) {
	s := grid2x2()
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	pts := s.Expand()
	if len(pts) != 4 {
		t.Fatalf("2x2 grid expanded to %d points", len(pts))
	}
	// Odometer order: sorted axes (l2_kb, lanes), last axis fastest.
	want := []map[string]float64{
		{"l2_kb": 4096, "lanes": 8},
		{"l2_kb": 4096, "lanes": 16},
		{"l2_kb": 16384, "lanes": 8},
		{"l2_kb": 16384, "lanes": 16},
	}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("expansion order:\n got %v\nwant %v", pts, want)
	}
	var hashes []string
	for _, pt := range pts {
		cfg, err := s.Build(pt)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, confhash.Key("dgemm", "test", cfg))
	}
	// Re-expand from a freshly parsed equivalent spec (benches in a
	// different order): same key, same points, same hashes.
	s2 := &Spec{
		Benches: []string{"fft", "dgemm"},
		Scale:   "test",
		Axes: map[string]Axis{
			"l2_kb": {Values: []float64{16384, 4096}},
			"lanes": {Values: []float64{16, 8}},
		},
	}
	if err := s2.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if s.Key() != s2.Key() {
		t.Errorf("equivalent specs got different keys %s vs %s", s.Key(), s2.Key())
	}
	pts2 := s2.Expand()
	if !reflect.DeepEqual(pts, pts2) {
		t.Errorf("equivalent specs expanded differently")
	}
	for i, pt := range pts2 {
		cfg, err := s2.Build(pt)
		if err != nil {
			t.Fatal(err)
		}
		if h := confhash.Key("dgemm", "test", cfg); h != hashes[i] {
			t.Errorf("point %d confhash %s != %s", i, h, hashes[i])
		}
	}
	// All four points are distinct experiments.
	seen := map[string]bool{}
	for _, h := range hashes {
		if seen[h] {
			t.Errorf("duplicate confhash %s in grid", h)
		}
		seen[h] = true
	}
}

func TestSpecKeySensitivity(t *testing.T) {
	a := grid2x2()
	if err := a.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	mutants := []*Spec{grid2x2(), grid2x2(), grid2x2(), grid2x2()}
	mutants[0].Scale = "bench"
	mutants[1].Benches = []string{"dgemm"}
	mutants[2].Axes["lanes"] = Axis{Values: []float64{8, 32}}
	mutants[3].Baseline = "EV8"
	for i, m := range mutants {
		if err := m.Canonicalize(); err != nil {
			t.Fatal(err)
		}
		if m.Key() == a.Key() {
			t.Errorf("mutant %d shares the key with the original", i)
		}
	}
}

// TestApplyKnobs checks every knob lands on its config field and that the
// memory system is rebuilt when ports or clock move.
func TestApplyKnobs(t *testing.T) {
	cfg := sim.T()
	err := Apply(cfg, map[string]float64{
		"lanes": 8, "l2_kb": 4096, "zbox_ports": 4,
		"clock_ghz": 4.26, "pump": 0, "phys_vregs": 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Vbox.Lanes != 8 || cfg.L2.Bytes != 4<<20 || cfg.Zbox.Ports != 4 ||
		cfg.CPUGHz != 4.26 || cfg.Vbox.PumpEnabled || cfg.Vbox.PhysVRegs != 64 {
		t.Errorf("knobs did not land: %+v", cfg)
	}
	// Zbox timing rebuilt at 4 ports × 8.325 GB/s and the doubled clock:
	// same per-port bytes/cycle ratio halves, so line occupancy doubles.
	ref := sim.T()
	if cfg.Zbox.LineCycles <= ref.Zbox.LineCycles {
		t.Errorf("Zbox not rebuilt: LineCycles %d vs ref %d", cfg.Zbox.LineCycles, ref.Zbox.LineCycles)
	}
	if !strings.Contains(cfg.Name, "lanes=8") || !strings.Contains(cfg.Name, "clock_ghz=4.26") {
		t.Errorf("name suffix missing knobs: %q", cfg.Name)
	}
	// Identity: applying no knobs changes nothing, including the hash.
	plain := sim.T()
	if err := Apply(plain, nil); err != nil {
		t.Fatal(err)
	}
	if confhash.Config(plain) != confhash.Config(sim.T()) {
		t.Errorf("empty Apply changed the confhash")
	}
}

// TestParetoFrontier pins domination on hand-built fixtures: dominated
// points are excluded, exact ties are both kept, and the frontier of a
// conflicting set is the whole set.
func TestParetoFrontier(t *testing.T) {
	cases := []struct {
		name  string
		costs []Cost
		want  []int
	}{
		{"dominated excluded",
			[]Cost{{2, 100, 300}, {1, 120, 310}, {1.5, 110, 305}},
			[]int{0}}, // point 0 beats both on all three axes
		{"exact ties kept",
			[]Cost{{2, 100, 300}, {2, 100, 300}, {1, 120, 310}},
			[]int{0, 1}},
		{"conflicting axes all kept",
			[]Cost{{3, 150, 350}, {2, 100, 300}, {1, 50, 250}},
			[]int{0, 1, 2}},
		{"partial domination",
			[]Cost{{2, 100, 300}, {2, 100, 299}, {2, 101, 300}},
			[]int{1}}, // 1 dominates 0 (mm²) and 2 (watts+mm²)
	}
	for _, c := range cases {
		if got := Frontier(c.costs); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: frontier %v, want %v", c.name, got, c.want)
		}
	}
	if Frontier(nil) != nil {
		t.Error("empty frontier should be nil")
	}
}

func TestEvaluateMovesWithKnobs(t *testing.T) {
	wT, aT := Evaluate(sim.T())
	small := sim.T()
	if err := Apply(small, map[string]float64{"lanes": 8, "l2_kb": 8192}); err != nil {
		t.Fatal(err)
	}
	wS, aS := Evaluate(small)
	if wS >= wT || aS >= aT {
		t.Errorf("shrunk design should cost less: %f W %f mm² vs %f W %f mm²", wS, aS, wT, aT)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
}
