// Package dse is the design-space-exploration layer: a vocabulary of
// sweepable machine knobs, deterministic grid expansion of sweep specs, and
// Pareto-frontier ranking over {speedup, watts, mm²}. It sits between the
// simulator's configuration space (internal/sim, hashed by internal/confhash)
// and the serving layer's /v1/sweeps endpoints: a sweep spec names knob axes,
// dse expands them into concrete sim.Config points, the serve pipeline runs
// each point exactly once (dedup by confhash), and dse ranks the completed
// points on the three cost axes the paper trades against each other — the
// §6 speedups, the Table 1 power model, and the Figure 5 die.
//
// Knobs are deliberately restricted to parameters that are (a) visible to
// confhash, so swept points get distinct content addresses, and (b) honest
// inputs of the timing model. Two paper parameters are intentionally NOT
// sweepable: MVL (isa.VLMax is an architectural constant baked into register
// array types at compile time) and SMT thread count (a workload mode, not a
// machine knob of the Benchmark.Run interface).
package dse

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// perPortGBs is the RAMBUS per-port bandwidth the Table 3 machines share:
// 66.6 GB/s over eight ports. When a sweep changes the port count or the CPU
// clock, the Zbox timing is rebuilt holding this per-port rate fixed, exactly
// as the paper scales its memory system.
const perPortGBs = 66.6 / 8

// Knob describes one sweepable axis of the machine-configuration space.
type Knob struct {
	Name string `json:"name"`
	// Type is "int", "float" or "bool" (bool values are 0/1 on the wire).
	Type string  `json:"type"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// PowerOfTwo marks knobs whose legal values are powers of two (cache
	// geometry uses mask indexing; lanes and ports come in binary groups).
	PowerOfTwo bool `json:"power_of_two,omitempty"`
	// VectorOnly knobs require a base configuration with a Vbox.
	VectorOnly bool   `json:"vector_only,omitempty"`
	Doc        string `json:"doc"`
}

// knobs is the registry, in sorted-name order (the canonical axis order of
// every sweep expansion).
var knobs = []Knob{
	{Name: "clock_ghz", Type: "float", Min: 1.0, Max: 12.0,
		Doc: "CPU clock in GHz; memory timing is rebuilt at the matching RAMBUS ratio (Figure 8 axis)"},
	{Name: "l2_kb", Type: "int", Min: 1024, Max: 65536, PowerOfTwo: true,
		Doc: "L2 capacity in KB (16384 = the paper's 16 MB)"},
	{Name: "lanes", Type: "int", Min: 2, Max: 64, PowerOfTwo: true, VectorOnly: true,
		Doc: "Vbox vector lanes (16 in the paper)"},
	{Name: "phys_vregs", Type: "int", Min: 40, Max: 1024, VectorOnly: true,
		Doc: "physical vector registers: 32 architected + rename copies (128 in the paper)"},
	{Name: "pump", Type: "bool", Min: 0, Max: 1, VectorOnly: true,
		Doc: "stride-1 double-bandwidth pump mode (the Figure 9 ablation)"},
	{Name: "zbox_ports", Type: "int", Min: 1, Max: 16, PowerOfTwo: true,
		Doc: "RAMBUS controller ports at 8.325 GB/s each (8 in the paper)"},
}

// Knobs returns the sweepable-knob registry in canonical (sorted-name)
// order. The slice is a copy; callers may not mutate the registry.
func Knobs() []Knob {
	out := make([]Knob, len(knobs))
	copy(out, knobs)
	return out
}

// KnobNames returns the sorted legal axis names (for error messages and the
// /v1/sweeps/knobs endpoint).
func KnobNames() []string {
	names := make([]string, len(knobs))
	for i, k := range knobs {
		names[i] = k.Name
	}
	return names
}

func knobByName(name string) (Knob, bool) {
	for _, k := range knobs {
		if k.Name == name {
			return k, true
		}
	}
	return Knob{}, false
}

// validate checks one value against the knob's type and range. The error
// names the knob so the serving layer can surface it verbatim as a
// bad_request envelope.
func (k Knob) validate(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("knob %q: value must be finite", k.Name)
	}
	if k.Type != "float" && v != math.Trunc(v) {
		return fmt.Errorf("knob %q: value %v must be an integer", k.Name, v)
	}
	if v < k.Min || v > k.Max {
		return fmt.Errorf("knob %q: value %v outside legal range [%g, %g]", k.Name, v, k.Min, k.Max)
	}
	if k.PowerOfTwo {
		n := int(v)
		if n <= 0 || n&(n-1) != 0 {
			return fmt.Errorf("knob %q: value %v must be a power of two", k.Name, v)
		}
	}
	return nil
}

// Apply mutates cfg in place with the given knob settings, validating every
// name and value, and renames the config with a deterministic knob suffix
// (presentation only — the display name is outside the confhash identity).
// Changing the port count or the clock rebuilds the Zbox timing at the fixed
// per-port RAMBUS bandwidth, so swept memory systems stay self-consistent.
func Apply(cfg *sim.Config, settings map[string]float64) error {
	names := make([]string, 0, len(settings))
	for name := range settings {
		names = append(names, name)
	}
	sort.Strings(names)
	rebuildZbox := false
	for _, name := range names {
		k, ok := knobByName(name)
		if !ok {
			return fmt.Errorf("unknown knob %q (have %s)", name, strings.Join(KnobNames(), ", "))
		}
		v := settings[name]
		if err := k.validate(v); err != nil {
			return err
		}
		if k.VectorOnly && !cfg.HasVbox {
			return fmt.Errorf("knob %q: requires a vector configuration (base %q has no Vbox)", name, cfg.Name)
		}
		switch name {
		case "clock_ghz":
			cfg.CPUGHz = v
			rebuildZbox = true
		case "l2_kb":
			cfg.L2.Bytes = int(v) << 10
		case "lanes":
			cfg.Vbox.Lanes = int(v)
		case "phys_vregs":
			cfg.Vbox.PhysVRegs = int(v)
		case "pump":
			cfg.Vbox.PumpEnabled = v != 0
		case "zbox_ports":
			cfg.Zbox.Ports = int(v)
			rebuildZbox = true
		}
	}
	if rebuildZbox {
		cfg.Zbox = sim.ZboxAt(cfg.Zbox.Ports, float64(cfg.Zbox.Ports)*perPortGBs, cfg.CPUGHz)
	}
	if len(names) > 0 {
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = name + "=" + strconv.FormatFloat(settings[name], 'g', -1, 64)
		}
		cfg.Name = cfg.Name + "/" + strings.Join(parts, ",")
	}
	return nil
}
