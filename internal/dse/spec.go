package dse

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// MaxPoints bounds one sweep's grid (before baselines): a runaway spec is a
// client error, not a server outage.
const MaxPoints = 4096

// Axis is one swept dimension: either an explicit value list or an
// inclusive arithmetic range. Canonicalize expands ranges into values, so a
// stored canonical spec always carries explicit grids.
type Axis struct {
	Values []float64 `json:"values,omitempty"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
	Step   float64   `json:"step,omitempty"`
}

// Spec is the POST /v1/sweeps body: a base machine, a declared baseline, a
// benchmark set and the knob axes to sweep. Its canonical form (sorted
// deduplicated benches, ranges expanded to sorted value lists) is the
// content-addressed identity of the sweep — two requests that describe the
// same grid in different words share one Key, one execution and one stored
// result.
type Spec struct {
	// Config names the base machine the knobs perturb (default "T").
	Config string `json:"config,omitempty"`
	// Baseline names the unmodified machine speedups are measured against
	// (default: the base config itself).
	Baseline string          `json:"baseline,omitempty"`
	Benches  []string        `json:"benches"`
	Scale    string          `json:"scale,omitempty"`
	Axes     map[string]Axis `json:"axes"`
}

// Canonicalize validates the spec against the simulator's vocabulary and
// rewrites it into canonical form in place: defaults applied, benches sorted
// and deduplicated, ranges expanded into sorted explicit value lists, every
// knob name and value checked against the registry and the base config.
// Errors name the offending field so they can be surfaced as bad_request
// envelopes verbatim.
func (s *Spec) Canonicalize() error {
	if s.Config == "" {
		s.Config = "T"
	}
	base := sim.ByName(s.Config)
	if base == nil {
		return fmt.Errorf("unknown config %q (have %v)", s.Config, sim.Names())
	}
	if s.Baseline == "" {
		s.Baseline = s.Config
	}
	if sim.ByName(s.Baseline) == nil {
		return fmt.Errorf("unknown baseline %q (have %v)", s.Baseline, sim.Names())
	}
	if len(s.Benches) == 0 {
		return fmt.Errorf("benches: at least one benchmark required (have %v)", workloads.Names())
	}
	seen := map[string]bool{}
	benches := s.Benches[:0]
	for _, b := range s.Benches {
		if _, err := workloads.Get(b); err != nil {
			return fmt.Errorf("benches: %v", err)
		}
		if !seen[b] {
			seen[b] = true
			benches = append(benches, b)
		}
	}
	sort.Strings(benches)
	s.Benches = benches
	if s.Scale == "" {
		s.Scale = "bench"
	}
	if _, err := workloads.ParseScale(s.Scale); err != nil {
		return fmt.Errorf("scale: %v", err)
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("axes: at least one knob axis required (have %s)", strings.Join(KnobNames(), ", "))
	}
	total := 1
	for name, ax := range s.Axes {
		k, ok := knobByName(name)
		if !ok {
			return fmt.Errorf("unknown knob %q (have %s)", name, strings.Join(KnobNames(), ", "))
		}
		vals := ax.Values
		if len(vals) == 0 {
			if ax.Step <= 0 || ax.Max < ax.Min {
				return fmt.Errorf("knob %q: range needs min ≤ max and step > 0", name)
			}
			for v := ax.Min; v <= ax.Max+1e-9; v += ax.Step {
				vals = append(vals, v)
			}
		}
		sort.Float64s(vals)
		uniq := vals[:0]
		for i, v := range vals {
			if err := k.validate(v); err != nil {
				return err
			}
			if k.VectorOnly && !base.HasVbox {
				return fmt.Errorf("knob %q: requires a vector configuration (base %q has no Vbox)", name, s.Config)
			}
			if i == 0 || v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		s.Axes[name] = Axis{Values: uniq}
		total *= len(uniq)
		if total > MaxPoints {
			return fmt.Errorf("axes: grid exceeds %d points", MaxPoints)
		}
	}
	return nil
}

// axisNames returns the swept knob names in canonical (sorted) order.
func (s *Spec) axisNames() []string {
	names := make([]string, 0, len(s.Axes))
	for name := range s.Axes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Key is the content address of a canonical spec: a stable digest over the
// base machine, baseline, scale, benchmark set and every axis value. It keys
// the durable sweep store and in-flight sweep deduplication, the same way
// confhash.Key addresses a single experiment.
func (s *Spec) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "sweep;config=%s;baseline=%s;scale=%s;benches=%s;",
		s.Config, s.Baseline, s.Scale, strings.Join(s.Benches, ","))
	for _, name := range s.axisNames() {
		fmt.Fprintf(h, "%s=", name)
		for _, v := range s.Axes[name].Values {
			fmt.Fprintf(h, "%s,", strconv.FormatFloat(v, 'g', -1, 64))
		}
		fmt.Fprint(h, ";")
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// Expand enumerates the grid points of a canonical spec in deterministic
// odometer order: axes sorted by name, the last axis varying fastest. The
// same spec always yields the same point sequence — and therefore the same
// confhash sequence — which is what makes sweep resume and deduplication
// sound.
func (s *Spec) Expand() []map[string]float64 {
	names := s.axisNames()
	if len(names) == 0 {
		return []map[string]float64{{}}
	}
	var points []map[string]float64
	idx := make([]int, len(names))
	for {
		pt := make(map[string]float64, len(names))
		for i, name := range names {
			pt[name] = s.Axes[name].Values[idx[i]]
		}
		points = append(points, pt)
		i := len(names) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.Axes[names[i]].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return points
		}
	}
}

// Build applies one grid point's knobs to a fresh copy of the base config.
func (s *Spec) Build(settings map[string]float64) (*sim.Config, error) {
	cfg := sim.ByName(s.Config)
	if cfg == nil {
		return nil, fmt.Errorf("unknown config %q (have %v)", s.Config, sim.Names())
	}
	if err := Apply(cfg, settings); err != nil {
		return nil, err
	}
	return cfg, nil
}

// BaselineConfig returns the declared baseline machine, unmodified.
func (s *Spec) BaselineConfig() *sim.Config { return sim.ByName(s.Baseline) }
