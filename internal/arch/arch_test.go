package arch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mem"
)

func newM() *Machine { return New(mem.New()) }

func TestScalarALU(t *testing.T) {
	m := newM()
	m.R[1] = 7
	m.R[2] = 5
	cases := []struct {
		op   isa.Op
		want uint64
	}{
		{isa.OpADDQ, 12},
		{isa.OpSUBQ, 2},
		{isa.OpMULQ, 35},
		{isa.OpAND, 5},
		{isa.OpBIS, 7},
		{isa.OpXOR, 2},
		{isa.OpCMPEQ, 0},
		{isa.OpCMPLT, 0},
		{isa.OpCMPLE, 0},
	}
	for _, c := range cases {
		m.Step(&isa.Inst{Op: c.op, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
		if m.R[3] != c.want {
			t.Errorf("%s: got %d, want %d", c.op, m.R[3], c.want)
		}
	}
}

func TestS8ADDQ(t *testing.T) {
	m := newM()
	m.R[1] = 3
	m.R[2] = 100
	m.Step(&isa.Inst{Op: isa.OpS8ADDQ, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
	if m.R[3] != 124 {
		t.Fatalf("s8addq = %d, want 124", m.R[3])
	}
}

func TestR31ReadsZeroAndIgnoresWrites(t *testing.T) {
	m := newM()
	m.Step(&isa.Inst{Op: isa.OpLDA, Dst: isa.RZero, Src1: isa.RZero, Imm: 42})
	m.Step(&isa.Inst{Op: isa.OpADDQ, Dst: isa.R(1), Src1: isa.RZero, Src2: isa.RZero})
	if m.R[1] != 0 {
		t.Fatalf("r31 leaked a value: %d", m.R[1])
	}
}

func TestScalarFP(t *testing.T) {
	m := newM()
	m.WriteF(1, 6.0)
	m.WriteF(2, 1.5)
	m.Step(&isa.Inst{Op: isa.OpDIVT, Dst: isa.F(3), Src1: isa.F(1), Src2: isa.F(2)})
	if got := m.ReadF(3); got != 4.0 {
		t.Fatalf("divt = %v", got)
	}
	m.Step(&isa.Inst{Op: isa.OpSQRTT, Dst: isa.F(4), Src1: isa.F(3)})
	if got := m.ReadF(4); got != 2.0 {
		t.Fatalf("sqrtt = %v", got)
	}
	m.R[5] = 9
	m.Step(&isa.Inst{Op: isa.OpCVTQT, Dst: isa.F(6), Src1: isa.R(5)})
	if got := m.ReadF(6); got != 9.0 {
		t.Fatalf("cvtqt = %v", got)
	}
}

func TestScalarMemory(t *testing.T) {
	m := newM()
	m.R[1] = 0x1000
	m.R[2] = 0x5a5a
	eff := m.Step(&isa.Inst{Op: isa.OpSTQ, Src1: isa.R(2), Src2: isa.R(1), Imm: 8})
	if len(eff.Addrs) != 1 || eff.Addrs[0] != 0x1008 {
		t.Fatalf("store effect addrs = %v", eff.Addrs)
	}
	m.Step(&isa.Inst{Op: isa.OpLDQ, Dst: isa.R(3), Src2: isa.R(1), Imm: 8})
	if m.R[3] != 0x5a5a {
		t.Fatalf("load = %#x", m.R[3])
	}
}

func TestBranchEffects(t *testing.T) {
	m := newM()
	m.R[1] = 0
	if !m.Step(&isa.Inst{Op: isa.OpBEQ, Src1: isa.R(1)}).Taken {
		t.Error("beq on zero should be taken")
	}
	if m.Step(&isa.Inst{Op: isa.OpBNE, Src1: isa.R(1)}).Taken {
		t.Error("bne on zero should not be taken")
	}
	m.R[1] = ^uint64(0) // -1
	if !m.Step(&isa.Inst{Op: isa.OpBLT, Src1: isa.R(1)}).Taken {
		t.Error("blt on -1 should be taken")
	}
}

func TestVectorAddAndVL(t *testing.T) {
	m := newM()
	for i := 0; i < isa.VLMax; i++ {
		m.V[0][i] = uint64(i)
		m.V[1][i] = uint64(100 + i)
		m.V[2][i] = 0xfeed
	}
	m.R[9] = 10
	m.Step(&isa.Inst{Op: isa.OpSETVL, Src1: isa.R(9)})
	eff := m.Step(&isa.Inst{Op: isa.OpVADDQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)})
	if eff.VL != 10 || eff.Active != 10 {
		t.Fatalf("eff = %+v", eff)
	}
	for i := 0; i < 10; i++ {
		if m.V[2][i] != uint64(100+2*i) {
			t.Fatalf("v2[%d] = %d", i, m.V[2][i])
		}
	}
	// Elements beyond vl left unchanged (a legal UNPREDICTABLE behaviour).
	if m.V[2][10] != 0xfeed {
		t.Fatalf("v2[10] clobbered beyond vl")
	}
}

func TestSetVLClamps(t *testing.T) {
	m := newM()
	m.R[1] = 500
	m.Step(&isa.Inst{Op: isa.OpSETVL, Src1: isa.R(1)})
	if m.VL != isa.VLMax {
		t.Fatalf("vl = %d, want clamp to %d", m.VL, isa.VLMax)
	}
}

func TestVectorScalarOperate(t *testing.T) {
	m := newM()
	for i := 0; i < isa.VLMax; i++ {
		m.WriteVF(0, i, float64(i))
	}
	m.WriteF(7, 2.5)
	m.Step(&isa.Inst{Op: isa.OpVSMULT, Dst: isa.V(1), Src1: isa.V(0), Src2: isa.F(7)})
	for i := 0; i < isa.VLMax; i++ {
		if got := m.ReadVF(1, i); got != float64(i)*2.5 {
			t.Fatalf("v1[%d] = %v", i, got)
		}
	}
}

func TestMaskPipelineFromPaper(t *testing.T) {
	// The paper's §2 example: A(i).ne.0 .and. B(i).gt.2 via vcmpne/vcmpgt
	// (we use cmplt with swapped operands for gt) then vand, setvm.
	m := newM()
	for i := 0; i < isa.VLMax; i++ {
		m.V[0][i] = uint64(i % 2)     // A: odd elements non-zero
		m.WriteVF(1, i, float64(i%4)) // B: .gt.2 for i%4 == 3
	}
	// v6 = A != 0
	m.Step(&isa.Inst{Op: isa.OpVCMPNE, Dst: isa.V(6), Src1: isa.V(0), Src2: isa.VZero})
	// v7 = B > 2, computed as !(B <= 2): vscmptle then xor with 1.
	m.WriteF(2, 2.0)
	m.R[10] = 1
	m.Step(&isa.Inst{Op: isa.OpVSCMPTLE, Dst: isa.V(7), Src1: isa.V(1), Src2: isa.F(2)})
	m.Step(&isa.Inst{Op: isa.OpVSXOR, Dst: isa.V(7), Src1: isa.V(7), Src2: isa.R(10)})
	m.Step(&isa.Inst{Op: isa.OpVAND, Dst: isa.V(8), Src1: isa.V(6), Src2: isa.V(7)})
	m.Step(&isa.Inst{Op: isa.OpSETVM, Src1: isa.V(8)})
	for i := 0; i < isa.VLMax; i++ {
		want := (i%2 != 0) && (float64(i%4) > 2.0)
		if m.VM[i] != want {
			t.Fatalf("vm[%d] = %v, want %v", i, m.VM[i], want)
		}
	}
	// Masked add only touches masked-in elements.
	for i := 0; i < isa.VLMax; i++ {
		m.V[3][i] = 0
		m.V[4][i] = 7
		m.V[5][i] = 0xbeef
	}
	eff := m.Step(&isa.Inst{Op: isa.OpVADDQ, Dst: isa.V(5), Src1: isa.V(3), Src2: isa.V(4), Masked: true})
	want := 0
	for i := 0; i < isa.VLMax; i++ {
		if m.VM[i] {
			want++
			if m.V[5][i] != 7 {
				t.Fatalf("masked-in element %d not written", i)
			}
		} else if m.V[5][i] != 0xbeef {
			t.Fatalf("masked-out element %d written", i)
		}
	}
	if eff.Active != want {
		t.Fatalf("Active = %d, want %d", eff.Active, want)
	}
}

func TestStridedLoadStore(t *testing.T) {
	m := newM()
	base := uint64(0x10000)
	for i := 0; i < 256; i++ {
		m.Mem.StoreQ(base+uint64(i)*8, uint64(i)*3)
	}
	m.R[1] = base
	m.R[2] = 16 // stride 2 quadwords
	m.Step(&isa.Inst{Op: isa.OpSETVS, Src1: isa.R(2)})
	eff := m.Step(&isa.Inst{Op: isa.OpVLDQ, Dst: isa.V(0), Src2: isa.R(1)})
	if eff.Stride != 16 || len(eff.Addrs) != isa.VLMax {
		t.Fatalf("effect = %+v", eff)
	}
	for i := 0; i < isa.VLMax; i++ {
		if m.V[0][i] != uint64(2*i)*3 {
			t.Fatalf("v0[%d] = %d", i, m.V[0][i])
		}
		if eff.Addrs[i] != base+uint64(i)*16 {
			t.Fatalf("addr[%d] = %#x", i, eff.Addrs[i])
		}
	}
	// Store it back densely elsewhere.
	m.R[3] = 0x40000
	m.R[4] = 8
	m.Step(&isa.Inst{Op: isa.OpSETVS, Src1: isa.R(4)})
	m.Step(&isa.Inst{Op: isa.OpVSTQ, Src1: isa.V(0), Src2: isa.R(3)})
	for i := 0; i < isa.VLMax; i++ {
		if got := m.Mem.LoadQ(0x40000 + uint64(i)*8); got != uint64(2*i)*3 {
			t.Fatalf("stored[%d] = %d", i, got)
		}
	}
}

func TestGatherScatter(t *testing.T) {
	m := newM()
	base := uint64(0x20000)
	for i := 0; i < 1024; i++ {
		m.Mem.StoreQ(base+uint64(i)*8, uint64(i)+1000)
	}
	// Index vector: reversed byte offsets.
	for i := 0; i < isa.VLMax; i++ {
		m.V[1][i] = uint64((isa.VLMax - 1 - i) * 8)
	}
	m.R[1] = base
	m.Step(&isa.Inst{Op: isa.OpVGATHQ, Dst: isa.V(2), Idx: isa.V(1), Src2: isa.R(1)})
	for i := 0; i < isa.VLMax; i++ {
		if m.V[2][i] != uint64(isa.VLMax-1-i)+1000 {
			t.Fatalf("gather[%d] = %d", i, m.V[2][i])
		}
	}
	// Scatter increments back to distinct slots.
	m.R[2] = 0x80000
	m.Step(&isa.Inst{Op: isa.OpVSCATQ, Src1: isa.V(2), Idx: isa.V(1), Src2: isa.R(2)})
	for i := 0; i < isa.VLMax; i++ {
		off := uint64((isa.VLMax - 1 - i) * 8)
		if got := m.Mem.LoadQ(0x80000 + off); got != uint64(isa.VLMax-1-i)+1000 {
			t.Fatalf("scatter slot %d = %d", i, got)
		}
	}
}

func TestPrefetchToV31HasNoEffect(t *testing.T) {
	m := newM()
	m.R[1] = 0x30000
	m.V[31][0] = 0 // v31 is hardwired anyway
	eff := m.Step(&isa.Inst{Op: isa.OpVLDQ, Dst: isa.VZero, Src2: isa.R(1)})
	if len(eff.Addrs) != isa.VLMax {
		t.Fatal("prefetch should still generate addresses")
	}
	// Reading v31 in an add still yields zeros.
	m.Step(&isa.Inst{Op: isa.OpVADDQ, Dst: isa.V(0), Src1: isa.VZero, Src2: isa.VZero})
	for i := 0; i < isa.VLMax; i++ {
		if m.V[0][i] != 0 {
			t.Fatal("v31 should read as zero")
		}
	}
}

func TestVExtrVIns(t *testing.T) {
	m := newM()
	m.V[4][17] = 0xabc
	m.R[2] = 17
	m.Step(&isa.Inst{Op: isa.OpVEXTR, Dst: isa.R(3), Src1: isa.V(4), Src2: isa.R(2)})
	if m.R[3] != 0xabc {
		t.Fatalf("vextr = %#x", m.R[3])
	}
	m.R[4] = 0x123
	m.Step(&isa.Inst{Op: isa.OpVINS, Dst: isa.V(5), Src1: isa.R(4), Src2: isa.R(2)})
	if m.V[5][17] != 0x123 {
		t.Fatalf("vins = %#x", m.V[5][17])
	}
}

func TestVMerge(t *testing.T) {
	m := newM()
	for i := 0; i < isa.VLMax; i++ {
		m.V[0][i] = 1
		m.V[1][i] = 2
		m.VM[i] = i%3 == 0
	}
	m.Step(&isa.Inst{Op: isa.OpVMERG, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)})
	for i := 0; i < isa.VLMax; i++ {
		want := uint64(2)
		if i%3 == 0 {
			want = 1
		}
		if m.V[2][i] != want {
			t.Fatalf("vmerg[%d] = %d, want %d", i, m.V[2][i], want)
		}
	}
}

func TestVectorAddCommutes(t *testing.T) {
	f := func(a, b [8]uint64) bool {
		m := newM()
		for i := 0; i < 8; i++ {
			m.V[0][i] = a[i]
			m.V[1][i] = b[i]
		}
		m.R[1] = 8
		m.Step(&isa.Inst{Op: isa.OpSETVL, Src1: isa.R(1)})
		m.Step(&isa.Inst{Op: isa.OpVADDQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)})
		m.Step(&isa.Inst{Op: isa.OpVADDQ, Dst: isa.V(3), Src1: isa.V(1), Src2: isa.V(0)})
		for i := 0; i < 8; i++ {
			if m.V[2][i] != m.V[3][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterRoundTripProperty(t *testing.T) {
	// Scatter then gather with the same indices must reproduce the data
	// when indices are distinct.
	f := func(seed uint64, data [16]uint64) bool {
		m := newM()
		m.R[9] = 16
		m.Step(&isa.Inst{Op: isa.OpSETVL, Src1: isa.R(9)})
		// Build 16 distinct offsets by hashing slot i.
		used := map[uint64]bool{}
		for i := 0; i < 16; i++ {
			off := ((seed*2654435761 + uint64(i)*40503) % 4096) &^ 7
			for used[off] {
				off = (off + 8) % 4096
			}
			used[off] = true
			m.V[1][i] = off
			m.V[0][i] = data[i]
		}
		m.R[1] = 0x100000
		m.Step(&isa.Inst{Op: isa.OpVSCATQ, Src1: isa.V(0), Idx: isa.V(1), Src2: isa.R(1)})
		m.Step(&isa.Inst{Op: isa.OpVGATHQ, Dst: isa.V(2), Idx: isa.V(1), Src2: isa.R(1)})
		for i := 0; i < 16; i++ {
			if m.V[2][i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerLoop(t *testing.T) {
	// Sum 1..10 with a real branch loop through the Runner.
	p := archProgram()
	m := newM()
	n, err := m.Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.R[3] != 55 {
		t.Fatalf("sum = %d, want 55", m.R[3])
	}
	if n == 0 {
		t.Fatal("no instructions executed")
	}
}

func archProgram() Program {
	// r1 = counter (10..1), r3 = accumulator
	return Program{
		{Op: isa.OpLDA, Dst: isa.R(1), Src1: isa.RZero, Imm: 10},
		{Op: isa.OpLDA, Dst: isa.R(3), Src1: isa.RZero, Imm: 0},
		// loop:
		{Op: isa.OpADDQ, Dst: isa.R(3), Src1: isa.R(3), Src2: isa.R(1)},
		{Op: isa.OpLDA, Dst: isa.R(1), Src1: isa.R(1), Imm: -1},
		{Op: isa.OpBNE, Src1: isa.R(1), Imm: 2},
		{Op: isa.OpHALT},
	}
}

func TestRunnerRunaway(t *testing.T) {
	p := Program{{Op: isa.OpBR, Imm: 0}}
	m := newM()
	if _, err := m.Run(p, 100); err == nil {
		t.Fatal("expected step-limit error for infinite loop")
	}
}

func TestCVTTQTruncates(t *testing.T) {
	m := newM()
	m.WriteF(1, 3.99)
	m.Step(&isa.Inst{Op: isa.OpCVTTQ, Dst: isa.R(2), Src1: isa.F(1)})
	if m.R[2] != 3 {
		t.Fatalf("cvttq(3.99) = %d", m.R[2])
	}
	m.WriteF(1, -3.99)
	m.Step(&isa.Inst{Op: isa.OpCVTTQ, Dst: isa.R(2), Src1: isa.F(1)})
	if int64(m.R[2]) != -3 {
		t.Fatalf("cvttq(-3.99) = %d", int64(m.R[2]))
	}
}

func TestVMaxMinT(t *testing.T) {
	m := newM()
	m.WriteVF(0, 0, 1.5)
	m.WriteVF(1, 0, -2.5)
	m.Step(&isa.Inst{Op: isa.OpVMAXT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)})
	m.Step(&isa.Inst{Op: isa.OpVMINT, Dst: isa.V(3), Src1: isa.V(0), Src2: isa.V(1)})
	if m.ReadVF(2, 0) != 1.5 || m.ReadVF(3, 0) != -2.5 {
		t.Fatalf("max/min = %v/%v", m.ReadVF(2, 0), m.ReadVF(3, 0))
	}
}

func TestFPSpecials(t *testing.T) {
	m := newM()
	m.WriteF(1, 1.0)
	m.WriteF(2, 0.0)
	m.Step(&isa.Inst{Op: isa.OpDIVT, Dst: isa.F(3), Src1: isa.F(1), Src2: isa.F(2)})
	if !math.IsInf(m.ReadF(3), 1) {
		t.Fatalf("1/0 = %v, want +Inf", m.ReadF(3))
	}
}
