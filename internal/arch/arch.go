// Package arch implements the architectural (functional) Tarantula machine:
// the scalar Alpha subset plus the full vector extension semantics of §2.
// The timing models never compute values; they consume the dynamic effects
// (addresses, branch outcomes, active element counts) this package records,
// which is the ASIM-style functional-first, timing-directed split.
package arch

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Machine is the architectural state of one hardware thread.
type Machine struct {
	Mem *mem.Memory

	R  [32]uint64            // scalar integer file (r31 reads zero)
	F  [32]uint64            // scalar float file, IEEE bits (f31 reads zero)
	V  [32][isa.VLMax]uint64 // vector file (v31 reads zero)
	VL uint64                // vector length, 1..128 (8-bit register)
	VS int64                 // vector stride in bytes (64-bit register)
	VM [isa.VLMax]bool       // vector mask

	// Bump arenas behind Effect.Addrs / Effect.ElemIdx. Timing models keep
	// those slice headers inside in-flight uops, so carved-out regions are
	// never rewritten — a full arena is abandoned to the collector and a
	// fresh chunk started. This amortises what used to be one (or two)
	// slice allocations on every memory instruction in the trace hot path.
	addrArena []uint64
	idxArena  []uint8
}

// New returns a machine with vl=128, vs=8 (unit stride over quadwords) and
// an all-ones mask, bound to m.
func New(m *mem.Memory) *Machine {
	mc := &Machine{Mem: m, VL: isa.VLMax, VS: 8}
	for i := range mc.VM {
		mc.VM[i] = true
	}
	return mc
}

// Effect records the dynamic outcome of one instruction: everything the
// timing model needs that is not static.
type Effect struct {
	// Taken is the branch outcome for branches.
	Taken bool
	// Addrs holds the element addresses touched by a memory instruction
	// (one entry for scalar memory ops). Inactive (masked-off or beyond-vl)
	// elements are absent.
	Addrs []uint64
	// VL is the vector length in force when a vector instruction executed.
	VL int
	// Stride is the vs value in force for SM instructions, in bytes.
	Stride int64
	// Base is the effective base address (rb + imm) of a vector memory
	// instruction; with Stride it reconstructs the full address pattern
	// even when masking leaves holes in Addrs.
	Base uint64
	// ElemIdx holds, parallel to Addrs, the vector element index of each
	// active address — the Vbox needs it to assign lanes.
	ElemIdx []uint8
	// Active is the number of elements that actually executed (vl minus
	// masked-off elements).
	Active int
}

// arenaChunk is the arena granularity in elements; the retained window is
// bounded by the uops in flight plus the trace's channel buffer, so at most
// a handful of chunks are live at once.
const arenaChunk = 4096

// newAddrs reserves room for n addresses and returns it as an empty slice to
// append into. The region is exclusively the caller's: the arena only ever
// advances past it.
func (m *Machine) newAddrs(n int) []uint64 {
	if len(m.addrArena)+n > cap(m.addrArena) {
		c := arenaChunk
		if n > c {
			c = n
		}
		m.addrArena = make([]uint64, 0, c)
	}
	base := len(m.addrArena)
	m.addrArena = m.addrArena[:base+n]
	return m.addrArena[base : base : base+n]
}

// newIdxs is newAddrs for element indices.
func (m *Machine) newIdxs(n int) []uint8 {
	if len(m.idxArena)+n > cap(m.idxArena) {
		c := arenaChunk
		if n > c {
			c = n
		}
		m.idxArena = make([]uint8, 0, c)
	}
	base := len(m.idxArena)
	m.idxArena = m.idxArena[:base+n]
	return m.idxArena[base : base : base+n]
}

// addr1 wraps a scalar memory address in an arena-backed one-element slice.
func (m *Machine) addr1(ea uint64) []uint64 {
	return append(m.newAddrs(1), ea)
}

func (m *Machine) rr(r isa.Reg) uint64 {
	switch r.Kind {
	case isa.KindInt:
		if r.Idx == 31 {
			return 0
		}
		return m.R[r.Idx]
	case isa.KindFP:
		if r.Idx == 31 {
			return 0
		}
		return m.F[r.Idx]
	case isa.KindCtl:
		switch r.Idx {
		case isa.CtlVL:
			return m.VL
		case isa.CtlVS:
			return uint64(m.VS)
		}
	}
	panic(fmt.Sprintf("arch: scalar read of %s", r))
}

func (m *Machine) wr(r isa.Reg, v uint64) {
	switch r.Kind {
	case isa.KindInt:
		if r.Idx != 31 {
			m.R[r.Idx] = v
		}
		return
	case isa.KindFP:
		if r.Idx != 31 {
			m.F[r.Idx] = v
		}
		return
	}
	panic(fmt.Sprintf("arch: scalar write of %s", r))
}

func (m *Machine) vreg(r isa.Reg) *[isa.VLMax]uint64 {
	if r.Kind != isa.KindVec {
		panic(fmt.Sprintf("arch: vector access to %s", r))
	}
	return &m.V[r.Idx]
}

// vread returns element i of vector register r, honouring v31 = 0.
func (m *Machine) vread(r isa.Reg, i int) uint64 {
	if r.Idx == 31 {
		return 0
	}
	return m.vreg(r)[i]
}

// vwrite writes element i of vector register r unless r is v31.
func (m *Machine) vwrite(r isa.Reg, i int, v uint64) {
	if r.Idx == 31 {
		return
	}
	m.vreg(r)[i] = v
}

func f64(bits uint64) float64 { return math.Float64frombits(bits) }
func bits(f float64) uint64   { return math.Float64bits(f) }
func b2q(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Step executes one instruction and returns its dynamic effect. Branch
// targets are not followed here; the caller (the vasm trace builder or the
// program Runner) owns control flow.
func (m *Machine) Step(in *isa.Inst) Effect {
	info := in.Info()
	switch info.Group {
	case isa.GScalar:
		return m.stepScalar(in, info)
	case isa.GVV:
		return m.stepVV(in)
	case isa.GVS:
		return m.stepVS(in)
	case isa.GSM:
		return m.stepSM(in, info)
	case isa.GRM:
		return m.stepRM(in, info)
	case isa.GVC:
		return m.stepVC(in)
	}
	panic("arch: unknown group")
}

func (m *Machine) stepScalar(in *isa.Inst, info *isa.Info) Effect {
	var a, b uint64
	if in.Src1.Valid() {
		a = m.rr(in.Src1)
	}
	if in.Src2.Valid() {
		b = m.rr(in.Src2)
	} else {
		b = uint64(in.Imm)
	}
	switch in.Op {
	case isa.OpLDA:
		// rd = rb + imm; with Src1 == RZero this is load-immediate.
		m.wr(in.Dst, a+uint64(in.Imm))
	case isa.OpADDQ:
		m.wr(in.Dst, a+b)
	case isa.OpSUBQ:
		m.wr(in.Dst, a-b)
	case isa.OpMULQ:
		m.wr(in.Dst, a*b)
	case isa.OpS8ADDQ:
		m.wr(in.Dst, a*8+b)
	case isa.OpAND:
		m.wr(in.Dst, a&b)
	case isa.OpBIS:
		m.wr(in.Dst, a|b)
	case isa.OpXOR:
		m.wr(in.Dst, a^b)
	case isa.OpSLL:
		m.wr(in.Dst, a<<(b&63))
	case isa.OpSRL:
		m.wr(in.Dst, a>>(b&63))
	case isa.OpSRA:
		m.wr(in.Dst, uint64(int64(a)>>(b&63)))
	case isa.OpCMPEQ:
		m.wr(in.Dst, b2q(a == b))
	case isa.OpCMPLT:
		m.wr(in.Dst, b2q(int64(a) < int64(b)))
	case isa.OpCMPLE:
		m.wr(in.Dst, b2q(int64(a) <= int64(b)))
	case isa.OpCMPULT:
		m.wr(in.Dst, b2q(a < b))

	case isa.OpADDT:
		m.wr(in.Dst, bits(f64(a)+f64(b)))
	case isa.OpSUBT:
		m.wr(in.Dst, bits(f64(a)-f64(b)))
	case isa.OpMULT:
		m.wr(in.Dst, bits(f64(a)*f64(b)))
	case isa.OpDIVT:
		m.wr(in.Dst, bits(f64(a)/f64(b)))
	case isa.OpSQRTT:
		m.wr(in.Dst, bits(math.Sqrt(f64(a))))
	case isa.OpCMPTEQ:
		m.wr(in.Dst, b2q(f64(a) == f64(b)))
	case isa.OpCMPTLT:
		m.wr(in.Dst, b2q(f64(a) < f64(b)))
	case isa.OpCMPTLE:
		m.wr(in.Dst, b2q(f64(a) <= f64(b)))
	case isa.OpCVTQT:
		m.wr(in.Dst, bits(float64(int64(a))))
	case isa.OpCVTTQ:
		m.wr(in.Dst, uint64(int64(f64(a))))

	case isa.OpLDQ, isa.OpLDT:
		ea := m.rr(in.Src2) + uint64(in.Imm)
		m.wr(in.Dst, m.Mem.LoadQ(ea))
		return Effect{Addrs: m.addr1(ea), Active: 1}
	case isa.OpPREFQ:
		ea := m.rr(in.Src2) + uint64(in.Imm)
		return Effect{Addrs: m.addr1(ea), Active: 1}
	case isa.OpSTQ, isa.OpSTT:
		ea := m.rr(in.Src2) + uint64(in.Imm)
		m.Mem.StoreQ(ea, m.rr(in.Src1))
		return Effect{Addrs: m.addr1(ea), Active: 1}
	case isa.OpWH64:
		ea := (m.rr(in.Src2) + uint64(in.Imm)) &^ 63
		m.Mem.ZeroLine(ea)
		return Effect{Addrs: m.addr1(ea), Active: 1}

	case isa.OpBR:
		return Effect{Taken: true}
	case isa.OpBEQ:
		return Effect{Taken: a == 0}
	case isa.OpBNE:
		return Effect{Taken: a != 0}
	case isa.OpBLT:
		return Effect{Taken: int64(a) < 0}
	case isa.OpBLE:
		return Effect{Taken: int64(a) <= 0}
	case isa.OpBGT:
		return Effect{Taken: int64(a) > 0}
	case isa.OpBGE:
		return Effect{Taken: int64(a) >= 0}

	case isa.OpHALT, isa.OpDRAINM:
		// No architectural effect; DrainM ordering is a timing-model
		// matter (write-buffer purge + replay trap).
	default:
		panic(fmt.Sprintf("arch: unimplemented scalar op %s", in.Op))
	}
	_ = info
	return Effect{Active: 1}
}

// active reports whether element i executes given vl and the mask mode.
func (m *Machine) active(in *isa.Inst, i int) bool {
	if uint64(i) >= m.VL {
		return false
	}
	return !in.Masked || m.VM[i]
}

func (m *Machine) stepVV(in *isa.Inst) Effect {
	vl := int(m.VL)
	act := 0
	for i := 0; i < vl; i++ {
		if !m.active(in, i) {
			continue
		}
		act++
		a := m.vread(in.Src1, i)
		var r uint64
		switch {
		case in.Op == isa.OpVSQRTT || in.Op == isa.OpVCVTQT || in.Op == isa.OpVCVTTQ:
			r = vvUnary(in.Op, a)
		case in.Op == isa.OpVMERG:
			if m.VM[i] {
				r = a
			} else {
				r = m.vread(in.Src2, i)
			}
		case in.Op == isa.OpVFMAT:
			r = bits(f64(m.vread(in.Dst, i)) + f64(a)*f64(m.vread(in.Src2, i)))
		default:
			r = vvBinary(in.Op, a, m.vread(in.Src2, i))
		}
		m.vwrite(in.Dst, i, r)
	}
	// Elements at vl..127 are UNPREDICTABLE per the ISA (§2, Figure 1); we
	// leave them unchanged, which is one legal behaviour.
	return Effect{VL: vl, Active: act}
}

func vvUnary(op isa.Op, a uint64) uint64 {
	switch op {
	case isa.OpVSQRTT:
		return bits(math.Sqrt(f64(a)))
	case isa.OpVCVTQT:
		return bits(float64(int64(a)))
	case isa.OpVCVTTQ:
		return uint64(int64(f64(a)))
	}
	panic("arch: bad unary")
}

func vvBinary(op isa.Op, a, b uint64) uint64 {
	switch op {
	case isa.OpVADDQ, isa.OpVSADDQ:
		return a + b
	case isa.OpVSUBQ, isa.OpVSSUBQ:
		return a - b
	case isa.OpVMULQ, isa.OpVSMULQ:
		return a * b
	case isa.OpVAND, isa.OpVSAND:
		return a & b
	case isa.OpVBIS, isa.OpVSBIS:
		return a | b
	case isa.OpVXOR, isa.OpVSXOR:
		return a ^ b
	case isa.OpVSLL, isa.OpVSSLL:
		return a << (b & 63)
	case isa.OpVSRL, isa.OpVSSRL:
		return a >> (b & 63)
	case isa.OpVSRA:
		return uint64(int64(a) >> (b & 63))
	case isa.OpVCMPEQ, isa.OpVSCMPEQ:
		return b2q(a == b)
	case isa.OpVCMPNE:
		return b2q(a != b)
	case isa.OpVCMPLT, isa.OpVSCMPLT:
		return b2q(int64(a) < int64(b))
	case isa.OpVCMPLE:
		return b2q(int64(a) <= int64(b))
	case isa.OpVADDT, isa.OpVSADDT:
		return bits(f64(a) + f64(b))
	case isa.OpVSUBT, isa.OpVSSUBT:
		return bits(f64(a) - f64(b))
	case isa.OpVMULT, isa.OpVSMULT:
		return bits(f64(a) * f64(b))
	case isa.OpVDIVT, isa.OpVSDIVT:
		return bits(f64(a) / f64(b))
	case isa.OpVCMPTEQ, isa.OpVSCMPTEQ:
		return b2q(f64(a) == f64(b))
	case isa.OpVCMPTLT, isa.OpVSCMPTLT:
		return b2q(f64(a) < f64(b))
	case isa.OpVCMPTLE, isa.OpVSCMPTLE:
		return b2q(f64(a) <= f64(b))
	case isa.OpVMAXT:
		return bits(math.Max(f64(a), f64(b)))
	case isa.OpVMINT:
		return bits(math.Min(f64(a), f64(b)))
	}
	panic(fmt.Sprintf("arch: bad binary %s", op))
}

func (m *Machine) stepVS(in *isa.Inst) Effect {
	vl := int(m.VL)
	s := m.rr(in.Src2)
	act := 0
	for i := 0; i < vl; i++ {
		if !m.active(in, i) {
			continue
		}
		act++
		if in.Op == isa.OpVSFMAT {
			m.vwrite(in.Dst, i, bits(f64(m.vread(in.Dst, i))+f64(m.vread(in.Src1, i))*f64(s)))
		} else {
			m.vwrite(in.Dst, i, vvBinary(in.Op, m.vread(in.Src1, i), s))
		}
	}
	return Effect{VL: vl, Active: act}
}

func (m *Machine) stepSM(in *isa.Inst, info *isa.Info) Effect {
	vl := int(m.VL)
	base := m.rr(in.Src2) + uint64(in.Imm)
	addrs := m.newAddrs(vl)
	idxs := m.newIdxs(vl)
	for i := 0; i < vl; i++ {
		if !m.active(in, i) {
			continue
		}
		ea := base + uint64(int64(i)*m.VS)
		addrs = append(addrs, ea)
		idxs = append(idxs, uint8(i))
		if info.IsLoad {
			if in.Dst.Idx != 31 { // prefetch: no architectural effect
				m.vwrite(in.Dst, i, m.Mem.LoadQ(ea))
			}
		} else {
			m.Mem.StoreQ(ea, m.vread(in.Src1, i))
		}
	}
	return Effect{VL: vl, Stride: m.VS, Base: base, Addrs: addrs, ElemIdx: idxs, Active: len(addrs)}
}

func (m *Machine) stepRM(in *isa.Inst, info *isa.Info) Effect {
	vl := int(m.VL)
	base := m.rr(in.Src2) + uint64(in.Imm)
	addrs := m.newAddrs(vl)
	idxs := m.newIdxs(vl)
	for i := 0; i < vl; i++ {
		if !m.active(in, i) {
			continue
		}
		ea := base + m.vread(in.Idx, i)
		addrs = append(addrs, ea)
		idxs = append(idxs, uint8(i))
		if info.IsLoad {
			if in.Dst.Idx != 31 {
				m.vwrite(in.Dst, i, m.Mem.LoadQ(ea))
			}
		} else {
			m.Mem.StoreQ(ea, m.vread(in.Src1, i))
		}
	}
	return Effect{VL: vl, Base: base, Addrs: addrs, ElemIdx: idxs, Active: len(addrs)}
}

func (m *Machine) stepVC(in *isa.Inst) Effect {
	switch in.Op {
	case isa.OpSETVL:
		v := m.rr(in.Src1)
		if v > isa.VLMax {
			v = isa.VLMax
		}
		if v == 0 {
			v = 0 // vl=0: subsequent vector ops are no-ops
		}
		m.VL = v
	case isa.OpSETVS:
		m.VS = int64(m.rr(in.Src1))
	case isa.OpSETVM:
		src := m.vreg(in.Src1)
		for i := range m.VM {
			m.VM[i] = src[i]&1 != 0
		}
	case isa.OpVCLRM:
		for i := range m.VM {
			m.VM[i] = true
		}
	case isa.OpVEXTR:
		idx := int(m.rr(in.Src2) & (isa.VLMax - 1))
		m.wr(in.Dst, m.vread(in.Src1, idx))
	case isa.OpVINS:
		idx := int(m.rr(in.Src2) & (isa.VLMax - 1))
		m.vwrite(in.Dst, idx, m.rr(in.Src1))
	default:
		panic(fmt.Sprintf("arch: unimplemented VC op %s", in.Op))
	}
	return Effect{VL: int(m.VL), Active: 1}
}

// ReadF returns scalar float register n as a float64.
func (m *Machine) ReadF(n int) float64 { return f64(m.F[n]) }

// WriteF sets scalar float register n from a float64.
func (m *Machine) WriteF(n int, v float64) { m.F[n] = bits(v) }

// ReadVF returns element i of vector register n as a float64.
func (m *Machine) ReadVF(n, i int) float64 { return f64(m.V[n][i]) }

// WriteVF sets element i of vector register n from a float64.
func (m *Machine) WriteVF(n, i int, v float64) { m.V[n][i] = bits(v) }
