package arch

import (
	"fmt"

	"repro/internal/isa"
)

// Program is a fully resolved static instruction sequence. Branch immediates
// are absolute instruction indices. It exists so the functional ISA can be
// exercised as a real machine (fetch/step/branch), independent of the
// trace-builder path the workloads use.
type Program []isa.Inst

// Run executes p from instruction 0 until a HALT or until maxSteps
// instructions have retired, returning the number executed. It is the
// functional-machine analogue of a free-running core.
func (m *Machine) Run(p Program, maxSteps int) (int, error) {
	pc := 0
	for n := 0; n < maxSteps; n++ {
		if pc < 0 || pc >= len(p) {
			return n, fmt.Errorf("arch: pc %d out of range (len %d)", pc, len(p))
		}
		in := &p[pc]
		if in.Op == isa.OpHALT {
			return n + 1, nil
		}
		eff := m.Step(in)
		if in.Info().IsBranch && eff.Taken {
			pc = int(in.Imm)
		} else {
			pc++
		}
	}
	return maxSteps, fmt.Errorf("arch: exceeded %d steps without HALT", maxSteps)
}
