package arch

import "repro/internal/snapshot"

// SaveState encodes the architectural state of one hardware thread: both
// scalar files, the vector file, and the vl/vs/vm control registers. The
// bump arenas are encoding scratch, not architectural state, and the bound
// memory image is saved separately by the chip-level snapshot (SMT threads
// each own a Memory, so ownership stays with the caller).
func (m *Machine) SaveState(w *snapshot.Writer) {
	w.Tag("arch")
	for _, v := range m.R {
		w.U64(v)
	}
	for _, v := range m.F {
		w.U64(v)
	}
	for i := range m.V {
		for _, v := range m.V[i] {
			w.U64(v)
		}
	}
	w.U64(m.VL)
	w.I64(m.VS)
	for _, b := range m.VM {
		w.Bool(b)
	}
}

// LoadState restores the architectural state saved by SaveState.
func (m *Machine) LoadState(r *snapshot.Reader) error {
	r.Tag("arch")
	for i := range m.R {
		m.R[i] = r.U64()
	}
	for i := range m.F {
		m.F[i] = r.U64()
	}
	for i := range m.V {
		for j := range m.V[i] {
			m.V[i][j] = r.U64()
		}
	}
	m.VL = r.U64()
	m.VS = r.I64()
	for i := range m.VM {
		m.VM[i] = r.Bool()
	}
	return r.Err()
}
