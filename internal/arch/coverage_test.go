package arch

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// TestEveryOpcodeExecutes drives every opcode in the ISA through the
// functional machine with representative operands, both to pin the
// semantics in one table and to guarantee no opcode panics as
// "unimplemented".
func TestEveryOpcodeExecutes(t *testing.T) {
	type check func(m *Machine) bool
	cases := []struct {
		name  string
		setup func(m *Machine)
		inst  isa.Inst
		want  check
	}{
		// scalar integer
		{"lda", nil, isa.Inst{Op: isa.OpLDA, Dst: isa.R(1), Src1: isa.RZero, Imm: 77},
			func(m *Machine) bool { return m.R[1] == 77 }},
		{"addq", seti(1, 5, 2, 3), isa.Inst{Op: isa.OpADDQ, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 8 }},
		{"subq", seti(1, 5, 2, 3), isa.Inst{Op: isa.OpSUBQ, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 2 }},
		{"mulq", seti(1, 5, 2, 3), isa.Inst{Op: isa.OpMULQ, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 15 }},
		{"s8addq", seti(1, 5, 2, 3), isa.Inst{Op: isa.OpS8ADDQ, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 43 }},
		{"and", seti(1, 6, 2, 3), isa.Inst{Op: isa.OpAND, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 2 }},
		{"bis", seti(1, 6, 2, 3), isa.Inst{Op: isa.OpBIS, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 7 }},
		{"xor", seti(1, 6, 2, 3), isa.Inst{Op: isa.OpXOR, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 5 }},
		{"sll", seti(1, 3, 2, 2), isa.Inst{Op: isa.OpSLL, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 12 }},
		{"srl", seti(1, 12, 2, 2), isa.Inst{Op: isa.OpSRL, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 3 }},
		{"sra", func(m *Machine) { m.R[1] = ^uint64(0) - 7; m.R[2] = 1 },
			isa.Inst{Op: isa.OpSRA, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return int64(m.R[3]) == -4 }},
		{"cmpeq", seti(1, 4, 2, 4), isa.Inst{Op: isa.OpCMPEQ, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 1 }},
		{"cmplt", seti(1, 4, 2, 9), isa.Inst{Op: isa.OpCMPLT, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 1 }},
		{"cmple", seti(1, 9, 2, 9), isa.Inst{Op: isa.OpCMPLE, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 1 }},
		{"cmpult", func(m *Machine) { m.R[1] = 1; m.R[2] = ^uint64(0) },
			isa.Inst{Op: isa.OpCMPULT, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
			func(m *Machine) bool { return m.R[3] == 1 }},

		// scalar float
		{"addt", setf(1, 1.5, 2, 2.5), isa.Inst{Op: isa.OpADDT, Dst: isa.F(3), Src1: isa.F(1), Src2: isa.F(2)},
			func(m *Machine) bool { return m.ReadF(3) == 4.0 }},
		{"subt", setf(1, 1.5, 2, 2.5), isa.Inst{Op: isa.OpSUBT, Dst: isa.F(3), Src1: isa.F(1), Src2: isa.F(2)},
			func(m *Machine) bool { return m.ReadF(3) == -1.0 }},
		{"mult", setf(1, 1.5, 2, 2.0), isa.Inst{Op: isa.OpMULT, Dst: isa.F(3), Src1: isa.F(1), Src2: isa.F(2)},
			func(m *Machine) bool { return m.ReadF(3) == 3.0 }},
		{"divt", setf(1, 3.0, 2, 2.0), isa.Inst{Op: isa.OpDIVT, Dst: isa.F(3), Src1: isa.F(1), Src2: isa.F(2)},
			func(m *Machine) bool { return m.ReadF(3) == 1.5 }},
		{"sqrtt", setf(1, 9.0, 0, 0), isa.Inst{Op: isa.OpSQRTT, Dst: isa.F(3), Src1: isa.F(1)},
			func(m *Machine) bool { return m.ReadF(3) == 3.0 }},
		{"cmpteq", setf(1, 2.0, 2, 2.0), isa.Inst{Op: isa.OpCMPTEQ, Dst: isa.F(3), Src1: isa.F(1), Src2: isa.F(2)},
			func(m *Machine) bool { return m.F[3] == 1 }},
		{"cmptlt", setf(1, 1.0, 2, 2.0), isa.Inst{Op: isa.OpCMPTLT, Dst: isa.F(3), Src1: isa.F(1), Src2: isa.F(2)},
			func(m *Machine) bool { return m.F[3] == 1 }},
		{"cmptle", setf(1, 2.0, 2, 2.0), isa.Inst{Op: isa.OpCMPTLE, Dst: isa.F(3), Src1: isa.F(1), Src2: isa.F(2)},
			func(m *Machine) bool { return m.F[3] == 1 }},
		{"cvtqt", seti(1, 9, 0, 0), isa.Inst{Op: isa.OpCVTQT, Dst: isa.F(3), Src1: isa.R(1)},
			func(m *Machine) bool { return m.ReadF(3) == 9.0 }},
		{"cvttq", setf(1, 7.9, 0, 0), isa.Inst{Op: isa.OpCVTTQ, Dst: isa.R(3), Src1: isa.F(1)},
			func(m *Machine) bool { return m.R[3] == 7 }},

		// vector integer (one representative lane checked)
		{"vaddq", setv(0, 10, 1, 4), isa.Inst{Op: isa.OpVADDQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 14 }},
		{"vsubq", setv(0, 10, 1, 4), isa.Inst{Op: isa.OpVSUBQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 6 }},
		{"vmulq", setv(0, 10, 1, 4), isa.Inst{Op: isa.OpVMULQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 40 }},
		{"vand", setv(0, 6, 1, 3), isa.Inst{Op: isa.OpVAND, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 2 }},
		{"vbis", setv(0, 6, 1, 3), isa.Inst{Op: isa.OpVBIS, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 7 }},
		{"vxor", setv(0, 6, 1, 3), isa.Inst{Op: isa.OpVXOR, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 5 }},
		{"vsll", setv(0, 3, 1, 2), isa.Inst{Op: isa.OpVSLL, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 12 }},
		{"vsrl", setv(0, 12, 1, 2), isa.Inst{Op: isa.OpVSRL, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 3 }},
		{"vsra", func(m *Machine) { fillv(m, 0, ^uint64(0)-7); fillv(m, 1, 1) },
			isa.Inst{Op: isa.OpVSRA, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return int64(m.V[2][5]) == -4 }},
		{"vcmpeq", setv(0, 4, 1, 4), isa.Inst{Op: isa.OpVCMPEQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
		{"vcmpne", setv(0, 4, 1, 5), isa.Inst{Op: isa.OpVCMPNE, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
		{"vcmplt", setv(0, 4, 1, 5), isa.Inst{Op: isa.OpVCMPLT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
		{"vcmple", setv(0, 5, 1, 5), isa.Inst{Op: isa.OpVCMPLE, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},

		// vector float
		{"vaddt", setvf(0, 1.5, 1, 2.5), isa.Inst{Op: isa.OpVADDT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 4.0 }},
		{"vsubt", setvf(0, 1.5, 1, 2.5), isa.Inst{Op: isa.OpVSUBT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == -1.0 }},
		{"vmult", setvf(0, 1.5, 1, 2.0), isa.Inst{Op: isa.OpVMULT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 3.0 }},
		{"vdivt", setvf(0, 3.0, 1, 2.0), isa.Inst{Op: isa.OpVDIVT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 1.5 }},
		{"vsqrtt", setvf(0, 16.0, 0, 0), isa.Inst{Op: isa.OpVSQRTT, Dst: isa.V(2), Src1: isa.V(0)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 4.0 }},
		{"vcmpteq", setvf(0, 2.0, 1, 2.0), isa.Inst{Op: isa.OpVCMPTEQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
		{"vcmptlt", setvf(0, 1.0, 1, 2.0), isa.Inst{Op: isa.OpVCMPTLT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
		{"vcmptle", setvf(0, 2.0, 1, 2.0), isa.Inst{Op: isa.OpVCMPTLE, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
		{"vmaxt", setvf(0, 1.0, 1, 2.0), isa.Inst{Op: isa.OpVMAXT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 2.0 }},
		{"vmint", setvf(0, 1.0, 1, 2.0), isa.Inst{Op: isa.OpVMINT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 1.0 }},
		{"vcvtqt", setv(0, 9, 0, 0), isa.Inst{Op: isa.OpVCVTQT, Dst: isa.V(2), Src1: isa.V(0)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 9.0 }},
		{"vcvttq", setvf(0, 7.9, 0, 0), isa.Inst{Op: isa.OpVCVTTQ, Dst: isa.V(2), Src1: isa.V(0)},
			func(m *Machine) bool { return m.V[2][5] == 7 }},
		{"vfmat", func(m *Machine) { fillvf(m, 0, 2.0); fillvf(m, 1, 3.0); fillvf(m, 2, 10.0) },
			isa.Inst{Op: isa.OpVFMAT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 16.0 }},

		// vector-scalar (scalar in f1/r1)
		{"vsaddt", vsSetup(2.5, 0, 1.5), isa.Inst{Op: isa.OpVSADDT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.F(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 4.0 }},
		{"vssubt", vsSetup(2.5, 0, 1.5), isa.Inst{Op: isa.OpVSSUBT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.F(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 1.0 }},
		{"vsmult", vsSetup(2.0, 0, 1.5), isa.Inst{Op: isa.OpVSMULT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.F(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 3.0 }},
		{"vsdivt", vsSetup(3.0, 0, 2.0), isa.Inst{Op: isa.OpVSDIVT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.F(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 1.5 }},
		{"vsfmat", func(m *Machine) { fillvf(m, 0, 3.0); fillvf(m, 2, 10.0); m.WriteF(1, 2.0) },
			isa.Inst{Op: isa.OpVSFMAT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.F(1)},
			func(m *Machine) bool { return m.ReadVF(2, 5) == 16.0 }},
		{"vsaddq", func(m *Machine) { fillv(m, 0, 10); m.R[1] = 4 },
			isa.Inst{Op: isa.OpVSADDQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.R(1)},
			func(m *Machine) bool { return m.V[2][5] == 14 }},
		{"vssubq", func(m *Machine) { fillv(m, 0, 10); m.R[1] = 4 },
			isa.Inst{Op: isa.OpVSSUBQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.R(1)},
			func(m *Machine) bool { return m.V[2][5] == 6 }},
		{"vsmulq", func(m *Machine) { fillv(m, 0, 10); m.R[1] = 4 },
			isa.Inst{Op: isa.OpVSMULQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.R(1)},
			func(m *Machine) bool { return m.V[2][5] == 40 }},
		{"vsand", func(m *Machine) { fillv(m, 0, 6); m.R[1] = 3 },
			isa.Inst{Op: isa.OpVSAND, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.R(1)},
			func(m *Machine) bool { return m.V[2][5] == 2 }},
		{"vsbis", func(m *Machine) { fillv(m, 0, 6); m.R[1] = 3 },
			isa.Inst{Op: isa.OpVSBIS, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.R(1)},
			func(m *Machine) bool { return m.V[2][5] == 7 }},
		{"vsxor", func(m *Machine) { fillv(m, 0, 6); m.R[1] = 3 },
			isa.Inst{Op: isa.OpVSXOR, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.R(1)},
			func(m *Machine) bool { return m.V[2][5] == 5 }},
		{"vssll", func(m *Machine) { fillv(m, 0, 3); m.R[1] = 2 },
			isa.Inst{Op: isa.OpVSSLL, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.R(1)},
			func(m *Machine) bool { return m.V[2][5] == 12 }},
		{"vssrl", func(m *Machine) { fillv(m, 0, 12); m.R[1] = 2 },
			isa.Inst{Op: isa.OpVSSRL, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.R(1)},
			func(m *Machine) bool { return m.V[2][5] == 3 }},
		{"vscmpeq", func(m *Machine) { fillv(m, 0, 4); m.R[1] = 4 },
			isa.Inst{Op: isa.OpVSCMPEQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.R(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
		{"vscmplt", func(m *Machine) { fillv(m, 0, 3); m.R[1] = 4 },
			isa.Inst{Op: isa.OpVSCMPLT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.R(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
		{"vscmpteq", vsSetup(2.0, 0, 2.0), isa.Inst{Op: isa.OpVSCMPTEQ, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.F(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
		{"vscmptlt", vsSetup(1.0, 0, 2.0), isa.Inst{Op: isa.OpVSCMPTLT, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.F(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
		{"vscmptle", vsSetup(2.0, 0, 2.0), isa.Inst{Op: isa.OpVSCMPTLE, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.F(1)},
			func(m *Machine) bool { return m.V[2][5] == 1 }},
	}

	covered := map[isa.Op]bool{}
	for _, c := range cases {
		m := New(mem.New())
		if c.setup != nil {
			c.setup(m)
		}
		m.Step(&c.inst)
		if !c.want(m) {
			t.Errorf("%s: semantics check failed", c.name)
		}
		covered[c.inst.Op] = true
	}

	// Opcodes exercised thoroughly by other tests.
	elsewhere := []isa.Op{
		isa.OpLDQ, isa.OpSTQ, isa.OpLDT, isa.OpSTT, isa.OpWH64, isa.OpPREFQ,
		isa.OpBR, isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBLE, isa.OpBGT, isa.OpBGE,
		isa.OpHALT, isa.OpDRAINM,
		isa.OpVLDQ, isa.OpVSTQ, isa.OpVGATHQ, isa.OpVSCATQ,
		isa.OpSETVL, isa.OpSETVS, isa.OpSETVM, isa.OpVEXTR, isa.OpVINS, isa.OpVCLRM,
		isa.OpVMERG,
	}
	for _, op := range elsewhere {
		covered[op] = true
	}
	for op := isa.Op(1); ; op++ {
		info := isa.Lookup(op)
		if info.Name == "invalid" {
			break
		}
		if !covered[op] {
			t.Errorf("opcode %s has no semantics coverage", info.Name)
		}
	}
}

func seti(r1 int, v1 uint64, r2 int, v2 uint64) func(*Machine) {
	return func(m *Machine) {
		m.R[r1] = v1
		if r2 != 0 {
			m.R[r2] = v2
		}
	}
}

func setf(f1 int, v1 float64, f2 int, v2 float64) func(*Machine) {
	return func(m *Machine) {
		m.WriteF(f1, v1)
		if f2 != 0 {
			m.WriteF(f2, v2)
		}
	}
}

func fillv(m *Machine, v int, val uint64) {
	for i := 0; i < isa.VLMax; i++ {
		m.V[v][i] = val
	}
}

func fillvf(m *Machine, v int, val float64) {
	fillv(m, v, math.Float64bits(val))
}

func setv(v1 int, x1 uint64, v2 int, x2 uint64) func(*Machine) {
	return func(m *Machine) {
		fillv(m, v1, x1)
		if v2 != v1 {
			fillv(m, v2, x2)
		}
	}
}

func setvf(v1 int, x1 float64, v2 int, x2 float64) func(*Machine) {
	return func(m *Machine) {
		fillvf(m, v1, x1)
		if v2 != v1 {
			fillvf(m, v2, x2)
		}
	}
}

// vsSetup fills v<va> with vecVal and f1 with scalar.
func vsSetup(vecVal float64, va int, scalar float64) func(*Machine) {
	return func(m *Machine) {
		fillvf(m, va, vecVal)
		m.WriteF(1, scalar)
	}
}
