// Command tartables regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	tartables -all                 # everything (Table 1,3,4; Figures 6-9)
//	tartables -table 4             # one table
//	tartables -fig 7 -scale bench  # one figure at a given input scale
//
// Scales: test (seconds), bench (default, tens of seconds to minutes),
// full (minutes to tens of minutes). See EXPERIMENTS.md for the recorded
// bench-scale outputs and the paper comparison.
//
// Integrity flags: -check runs every cell under the invariant checker,
// -deadline bounds each cell's wall-clock time (wedged cells become error
// rows), and -faults N arms a seeded stall-storm campaign against a
// deterministic quarter of the cells to exercise that isolation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/faults"
	"repro/internal/floorplan"
	"repro/internal/tables"
	"repro/internal/workloads"
)

func main() {
	scaleFlag := flag.String("scale", "bench", "input scale: test, bench or full")
	table := flag.Int("table", 0, "regenerate one table (1, 2, 3 or 4)")
	fig := flag.Int("fig", 0, "regenerate one figure (5, 6, 7, 8 or 9)")
	all := flag.Bool("all", false, "regenerate everything")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max simulations to run concurrently (1 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	checkFlag := flag.Bool("check", false, "run every cell under the invariant checker (single-stepped, slower)")
	deadline := flag.Duration("deadline", 0, "wall-clock budget per cell (0 = none), e.g. 90s")
	faultSeed := flag.Int64("faults", 0, "seed for the stall-storm fault campaign (0 = off)")
	watchdog := flag.Uint64("watchdog", 0, "cycles without retirement before a cell is declared wedged (0 = default)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			check(err)
			defer f.Close()
			runtime.GC()
			check(pprof.Lookup("allocs").WriteTo(f, 0))
		}()
	}

	var scale workloads.Scale
	switch *scaleFlag {
	case "test":
		scale = workloads.Test
	case "bench":
		scale = workloads.Bench
	case "full":
		scale = workloads.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	r := tables.NewRunner(scale)
	r.Parallel = *parallel
	r.Check = *checkFlag
	r.Deadline = *deadline
	r.Watchdog = *watchdog
	if *faultSeed != 0 {
		r.Faults = faults.Storm(*faultSeed, 0)
	}
	if *all {
		// Schedule the whole sweep up front so the worker pool stays full
		// across table/figure boundaries.
		r.Prewarm()
	}

	if *all || *table == 1 {
		section("Table 1: power and area estimates")
		fmt.Println(tables.Table1())
	}
	if *all || *table == 2 {
		section("Table 2: benchmarks and measured vectorisation")
		rows, err := r.Table2()
		check(err)
		fmt.Println(tables.FormatTable2(rows))
	}
	if *all || *table == 3 {
		section("Table 3: machine configurations")
		fmt.Println(tables.Table3())
	}
	if *all || *table == 4 {
		section("Table 4: sustained memory bandwidth (MB/s)")
		rows, err := r.Table4()
		check(err)
		fmt.Println(tables.FormatTable4(rows))
	}
	if *all || *fig == 5 {
		section("Figure 5: Tarantula floorplan")
		fmt.Println(floorplan.Compute().Render())
	}
	if *all || *fig == 6 {
		section("Figure 6: sustained operations per cycle on Tarantula")
		rows, err := r.Fig6()
		check(err)
		fmt.Println(tables.FormatFig6(rows))
	}
	if *all || *fig == 7 {
		section("Figure 7: speedup of EV8+ and Tarantula over EV8")
		rows, err := r.Fig7()
		check(err)
		fmt.Println(tables.FormatFig7(rows))
	}
	if *all || *fig == 8 {
		section("Figure 8: performance scaling with frequency (T4, T10)")
		rows, err := r.Fig8()
		check(err)
		fmt.Println(tables.FormatFig8(rows))
	}
	if *all || *fig == 9 {
		section("Figure 9: slowdown with stride-1 double-bandwidth disabled")
		rows, err := r.Fig9()
		check(err)
		fmt.Println(tables.FormatFig9(rows))
	}
	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
}

func section(title string) {
	fmt.Println()
	fmt.Println("=== " + title + " ===")
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tartables:", err)
		os.Exit(1)
	}
}
