// Command tartables regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	tartables -all                 # everything (Table 1,3,4; Figures 6-9)
//	tartables -table 4             # one table
//	tartables -fig 7 -scale bench  # one figure at a given input scale
//
// Scales: test (seconds), bench (default, tens of seconds to minutes),
// full (minutes to tens of minutes). See EXPERIMENTS.md for the recorded
// bench-scale outputs and the paper comparison.
//
// Integrity flags: -check runs every cell under the invariant checker,
// -deadline bounds each cell's wall-clock time (wedged cells become error
// rows), and -faults N arms a seeded stall-storm campaign against a
// deterministic quarter of the cells to exercise that isolation.
//
// -json replaces the text rendering with one deterministic JSON document:
// the requested tables/figures as row arrays plus every underlying
// (benchmark, machine) cell in the same result encoding the tarserved API
// returns, stamped with its confhash content key — so a CLI artifact and a
// server response for the same experiment are byte-comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/faults"
	"repro/internal/floorplan"
	"repro/internal/serve"
	"repro/internal/tables"
	"repro/internal/workloads"
)

// jsonReport is the -json document. Field order here fixes the artifact's
// byte layout; encoding/json never reorders struct fields.
type jsonReport struct {
	Scale  string             `json:"scale"`
	Table1 string             `json:"table1,omitempty"`
	Table2 []tables.Table2Row `json:"table2,omitempty"`
	Table3 string             `json:"table3,omitempty"`
	Table4 []tables.Table4Row `json:"table4,omitempty"`
	Fig5   string             `json:"fig5,omitempty"`
	Fig6   []tables.Fig6Row   `json:"fig6,omitempty"`
	Fig7   []tables.Fig7Row   `json:"fig7,omitempty"`
	Fig8   []tables.Fig8Row   `json:"fig8,omitempty"`
	Fig9   []tables.Fig9Row   `json:"fig9,omitempty"`
	Cells  []*serve.JobResult `json:"cells,omitempty"`
}

func main() {
	scaleFlag := flag.String("scale", "bench", "input scale: test, bench or full")
	table := flag.Int("table", 0, "regenerate one table (1, 2, 3 or 4)")
	fig := flag.Int("fig", 0, "regenerate one figure (5, 6, 7, 8 or 9)")
	all := flag.Bool("all", false, "regenerate everything")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max simulations to run concurrently (1 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	checkFlag := flag.Bool("check", false, "run every cell under the invariant checker (single-stepped, slower)")
	deadline := flag.Duration("deadline", 0, "wall-clock budget per cell (0 = none), e.g. 90s")
	faultSeed := flag.Int64("faults", 0, "seed for the stall-storm fault campaign (0 = off)")
	watchdog := flag.Uint64("watchdog", 0, "cycles without retirement before a cell is declared wedged (0 = default)")
	jsonOut := flag.Bool("json", false, "emit one deterministic JSON document instead of text")
	sample := flag.Uint64("sample", 0, "sample IPC/bandwidth/occupancy every N cycles; the series rides along in each -json cell (0 = off)")
	sampleCap := flag.Int("sample-cap", 0, "max retained sample points per cell (0 = default)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			check(err)
			defer f.Close()
			runtime.GC()
			check(pprof.Lookup("allocs").WriteTo(f, 0))
		}()
	}

	scale, err := workloads.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := tables.NewRunner(scale)
	r.Parallel = *parallel
	var rep *jsonReport
	if *jsonOut {
		rep = &jsonReport{Scale: scale.String()}
		r.Quiet = true
	}
	r.Check = *checkFlag
	r.Deadline = *deadline
	r.Watchdog = *watchdog
	r.SampleEvery = *sample
	r.SampleCap = *sampleCap
	if *faultSeed != 0 {
		r.Faults = faults.Storm(*faultSeed, 0)
	}
	if *all {
		// Schedule the whole sweep up front so the worker pool stays full
		// across table/figure boundaries.
		r.Prewarm()
	}

	if *all || *table == 1 {
		if rep != nil {
			rep.Table1 = tables.Table1()
		} else {
			section("Table 1: power and area estimates")
			fmt.Println(tables.Table1())
		}
	}
	if *all || *table == 2 {
		if rep == nil {
			section("Table 2: benchmarks and measured vectorisation")
		}
		rows, err := r.Table2()
		check(err)
		if rep != nil {
			rep.Table2 = rows
		} else {
			fmt.Println(tables.FormatTable2(rows))
		}
	}
	if *all || *table == 3 {
		if rep != nil {
			rep.Table3 = tables.Table3()
		} else {
			section("Table 3: machine configurations")
			fmt.Println(tables.Table3())
		}
	}
	if *all || *table == 4 {
		if rep == nil {
			section("Table 4: sustained memory bandwidth (MB/s)")
		}
		rows, err := r.Table4()
		check(err)
		if rep != nil {
			rep.Table4 = rows
		} else {
			fmt.Println(tables.FormatTable4(rows))
		}
	}
	if *all || *fig == 5 {
		if rep != nil {
			rep.Fig5 = floorplan.Compute().Render()
		} else {
			section("Figure 5: Tarantula floorplan")
			fmt.Println(floorplan.Compute().Render())
		}
	}
	if *all || *fig == 6 {
		if rep == nil {
			section("Figure 6: sustained operations per cycle on Tarantula")
		}
		rows, err := r.Fig6()
		check(err)
		if rep != nil {
			rep.Fig6 = rows
		} else {
			fmt.Println(tables.FormatFig6(rows))
		}
	}
	if *all || *fig == 7 {
		if rep == nil {
			section("Figure 7: speedup of EV8+ and Tarantula over EV8")
		}
		rows, err := r.Fig7()
		check(err)
		if rep != nil {
			rep.Fig7 = rows
		} else {
			fmt.Println(tables.FormatFig7(rows))
		}
	}
	if *all || *fig == 8 {
		if rep == nil {
			section("Figure 8: performance scaling with frequency (T4, T10)")
		}
		rows, err := r.Fig8()
		check(err)
		if rep != nil {
			rep.Fig8 = rows
		} else {
			fmt.Println(tables.FormatFig8(rows))
		}
	}
	if *all || *fig == 9 {
		if rep == nil {
			section("Figure 9: slowdown with stride-1 double-bandwidth disabled")
		}
		rows, err := r.Fig9()
		check(err)
		if rep != nil {
			rep.Fig9 = rows
		} else {
			fmt.Println(tables.FormatFig9(rows))
		}
	}
	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if rep != nil {
		// Every memoised cell rides along in the server's result encoding,
		// keyed by content address, so a CLI artifact and an API response
		// for the same experiment compare byte-for-byte.
		for _, c := range r.Cells() {
			if c.Err != "" {
				rep.Cells = append(rep.Cells, &serve.JobResult{
					Schema: serve.SchemaVersion,
					Key:    c.Key, Bench: c.Bench, Config: c.Config, Scale: scale.String(), Err: c.Err,
				})
				continue
			}
			rep.Cells = append(rep.Cells, serve.EncodeResult(c.Key, c.Res))
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		fmt.Println(string(out))
	}
}

func section(title string) {
	fmt.Println()
	fmt.Println("=== " + title + " ===")
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tartables:", err)
		os.Exit(1)
	}
}
