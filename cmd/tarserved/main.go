// Command tarserved runs the Tarantula simulator as a long-lived job
// service: a JSON-over-HTTP API to submit experiments, poll or long-poll
// their status, and fetch results, backed by a bounded worker pool, a
// content-addressed LRU result cache with in-flight deduplication, and a
// Prometheus /metrics endpoint.
//
// Usage:
//
//	tarserved -addr :8077
//	tarserved -addr :8077 -workers 8 -cache 4096 -max-deadline 5m
//
// API sketch (see DESIGN.md for the full contract):
//
//	POST /v1/jobs                {"bench":"dgemm","config":"T","scale":"test"}
//	GET  /v1/jobs/{id}?wait=30s  long-poll job status
//	GET  /v1/jobs/{id}/result    200 result | 422 structured wedge | 404
//	GET  /v1/jobs                list retained jobs
//	GET  /v1/benches, /v1/configs, /metrics, /healthz
//
// SIGTERM/SIGINT drains: intake returns 503, queued and in-flight
// simulations complete (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "max simulations waiting for a worker")
	cache := flag.Int("cache", 4096, "result-cache entries (LRU)")
	jobDeadline := flag.Duration("job-deadline", 10*time.Minute, "default wall-clock budget per simulation (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 30*time.Minute, "upper bound a request may ask for (0 = uncapped)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "how long shutdown waits for in-flight simulations")
	sample := flag.Uint64("sample", 0, "sample IPC/bandwidth/occupancy every N cycles on every simulation; results carry the series and /metrics exposes per-experiment summaries (0 = off)")
	sampleCap := flag.Int("sample-cap", 0, "max retained sample points per simulation (0 = default)")
	flag.Parse()

	s := serve.New(serve.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		DefaultDeadline: *jobDeadline,
		MaxDeadline:     *maxDeadline,
		SampleEvery:     *sample,
		SampleCap:       *sampleCap,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tarserved: listening on %s\n", *addr)

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "tarserved: %v — draining in-flight simulations\n", sig)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "tarserved:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tarserved:", err)
		httpSrv.Close()
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "tarserved: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "tarserved: drained, exiting")
}
