// Command tarserved runs the Tarantula simulator as a long-lived job
// service: a JSON-over-HTTP API to submit experiments, poll or long-poll
// their status, and fetch results, backed by a bounded worker pool, a
// content-addressed LRU result cache with in-flight deduplication, and a
// Prometheus /metrics endpoint.
//
// Usage:
//
//	tarserved -addr :8077
//	tarserved -addr :8077 -workers 8 -cache 4096 -max-deadline 5m
//	tarserved -addr :8077 -backend subprocess -worker-bin ./tarworker
//	tarserved -addr :8077 -store-dir /var/lib/tarserved -queue-wait 2m
//	tarserved -addr :8077 -store-dir /shared -store-shared \
//	    -advertise 127.0.0.1:8077 -peers 127.0.0.1:8077,127.0.0.1:8078
//
// The last form is cluster mode: -peers lists every member (self included),
// -advertise is how peers reach this node, and -store-shared points every
// node at one content-addressed directory so any node's cache hit is every
// node's. Experiments are placed on a consistent-hash ring by confhash and
// forwarded to their owning node; tarrouter is the matching front door.
//
// With -store-dir, completed results are persisted to a crash-safe disk
// store (temp-file + fsync + rename, schema-versioned, corrupt files
// quarantined) and a restarted server warm-starts from them: resubmitting
// a finished sweep after a crash costs zero re-simulation. -queue-wait
// bounds how long a job may wait for a worker — expired jobs are shed with
// error code "deadline_exceeded" (504), and submissions whose estimated
// wait is hopeless are refused up front with "queue_full" + Retry-After.
//
// Execution backends (-backend):
//
//	inprocess   simulations run as goroutines in this process (default)
//	subprocess  each simulation runs in its own tarworker process; a
//	            wedged or crashing worker is SIGKILLed and the job is
//	            retried on another worker (-job-retries, exponential
//	            backoff). Results are byte-identical to in-process runs.
//
// API sketch (see README.md for the endpoint and error-code tables,
// DESIGN.md for the full contract):
//
//	POST /v1/jobs                {"bench":"dgemm","config":"T","scale":"test"}
//	GET  /v1/jobs/{id}?wait=30s  long-poll job status
//	GET  /v1/jobs/{id}/result    200 result | error envelope (422/500) | 404
//	GET  /v1/jobs                list retained jobs
//	POST /v1/sweeps              design-space sweep over knob axes; Pareto
//	                             frontier on {speedup, watts, mm²}
//	GET  /v1/sweeps/{id}?wait=5s long-poll sweep progress (per-point status)
//	GET  /v1/sweeps/{id}/result  completed SweepResult
//	GET  /v1/sweeps/knobs        sweepable knobs: names, types, legal ranges
//	GET  /v1/benches, /v1/configs, /metrics, /healthz
//
// Every error body is the stable envelope {"error":{"code","message",...}}.
//
// SIGTERM/SIGINT drains: intake returns 503, queued and in-flight
// simulations complete (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/serve"
)

// peerList collects -peers values: the flag may be repeated, and each value
// may itself be a comma-separated list.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			*p = append(*p, a)
		}
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "max simulations waiting for a worker")
	cache := flag.Int("cache", 4096, "result-cache entries (LRU)")
	jobDeadline := flag.Duration("job-deadline", 10*time.Minute, "default wall-clock budget per simulation (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 30*time.Minute, "upper bound a request may ask for (0 = uncapped)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "how long shutdown waits for in-flight simulations")
	sample := flag.Uint64("sample", 0, "sample IPC/bandwidth/occupancy every N cycles on every simulation; results carry the series and /metrics exposes per-experiment summaries (0 = off)")
	sampleCap := flag.Int("sample-cap", 0, "max retained sample points per simulation (0 = default)")
	storeDir := flag.String("store-dir", "", "persist results to this directory (crash-safe disk store; empty = memory only)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "disk-store byte cap; least-recently-accessed artifacts are evicted past it (0 = 1 GiB)")
	queueWait := flag.Duration("queue-wait", 5*time.Minute, "max time a job may wait for a worker before being shed with deadline_exceeded; also the admission controller's wait budget (0 = no shedding)")
	chaos := flag.String("chaos", "", "chaos campaigns, comma-separated: disk (inject disk-store I/O errors and torn writes), killstorm (SIGKILL subprocess workers on early attempts), flood (tiny queue and short waits to force structural shedding)")
	chaosSeed := flag.Int64("chaos-seed", 1, "deterministic seed for -chaos campaigns")
	backend := flag.String("backend", "inprocess", "execution backend: inprocess or subprocess")
	workerBin := flag.String("worker-bin", "", "tarworker binary for -backend subprocess (default: tarworker next to this binary, else $PATH)")
	jobRetries := flag.Int("job-retries", 2, "times a job is requeued after a worker death (subprocess backend)")
	killWorker := flag.String("kill-worker", "", "fault drill: comma-separated bench@config cells whose subprocess worker is SIGKILLed mid-job on first attempt")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file, finalized at drained shutdown")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at drained shutdown")
	nodeID := flag.String("node-id", "", "this node's name in a cluster; surfaced on /healthz and stamped into forward markers (default: the -advertise address)")
	advertiseAddr := flag.String("advertise", "", "this node's address as peers see it (e.g. 127.0.0.1:8077); enables cluster mode together with -peers")
	var peers peerList
	flag.Var(&peers, "peers", "every cluster member's advertise address, self included (repeatable and/or comma-separated)")
	storeShared := flag.Bool("store-shared", false, "treat -store-dir as a cluster-shared directory: every read goes to the filesystem so peers' writes are visible immediately (disables the local scan index and byte-cap eviction)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "cluster peer health-probe interval")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tarserved:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tarserved:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tarserved:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "tarserved:", err)
			}
		}()
	}

	// Resolve the -chaos campaigns before anything opens: disk chaos arms
	// the store's injector, killstorm the subprocess fleet's, and flood
	// shrinks the queue so saturation (and its structured shedding) is
	// reachable without megascale load.
	var diskChaos *faults.Config
	killStorm := false
	for _, c := range strings.Split(*chaos, ",") {
		switch strings.TrimSpace(c) {
		case "":
		case "disk":
			diskChaos = faults.DiskChaos(*chaosSeed)
		case "killstorm":
			killStorm = true
		case "flood":
			if *queue > 2 {
				*queue = 2
			}
			if *queueWait == 0 || *queueWait > 250*time.Millisecond {
				*queueWait = 250 * time.Millisecond
			}
		default:
			fmt.Fprintf(os.Stderr, "tarserved: unknown -chaos campaign %q (want disk, killstorm or flood)\n", c)
			os.Exit(2)
		}
	}
	if *chaos != "" {
		fmt.Fprintf(os.Stderr, "tarserved: chaos armed (%s, seed %d) — this server sheds and fails on purpose\n", *chaos, *chaosSeed)
	}

	var store serve.Store
	var err error
	if *storeShared {
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "tarserved: -store-shared requires -store-dir (the shared cluster directory)")
			os.Exit(2)
		}
		store, err = serve.OpenSharedStore(*storeDir, *cache, diskChaos)
	} else {
		store, err = serve.OpenStore(*storeDir, *cache, *storeMaxBytes, diskChaos)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarserved:", err)
		os.Exit(2)
	}
	if *storeDir != "" {
		st := store.Status()
		if *storeShared {
			fmt.Fprintf(os.Stderr, "tarserved: shared store %s (direct reads, no local index)\n", *storeDir)
		} else {
			fmt.Fprintf(os.Stderr, "tarserved: disk store %s: %d artifacts warm-started (%d bytes), %d quarantined\n",
				*storeDir, st.WarmStart, st.DiskBytes, st.Quarantined)
		}
	}

	opts := serve.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		Store:           store,
		QueueWait:       *queueWait,
		DefaultDeadline: *jobDeadline,
		MaxDeadline:     *maxDeadline,
		SampleEvery:     *sample,
		SampleCap:       *sampleCap,
	}
	switch *backend {
	case "inprocess":
		if *killWorker != "" {
			fmt.Fprintln(os.Stderr, "tarserved: -kill-worker requires -backend subprocess (there is no process to kill in-process)")
			os.Exit(2)
		}
		if killStorm {
			fmt.Fprintln(os.Stderr, "tarserved: -chaos killstorm requires -backend subprocess (there is no process to kill in-process)")
			os.Exit(2)
		}
	case "subprocess":
		var fcfg *faults.Config
		switch {
		case killStorm && *killWorker != "":
			fmt.Fprintln(os.Stderr, "tarserved: -chaos killstorm and -kill-worker are mutually exclusive")
			os.Exit(2)
		case killStorm:
			// Storm depth 2 with the default retry budget of 2 means every
			// job survives on its third attempt: maximum fleet churn, zero
			// permanently lost work.
			fcfg = faults.KillStorm(*chaosSeed, 2)
		case *killWorker != "":
			fcfg = faults.WorkerKiller(strings.Split(*killWorker, ",")...)
			fmt.Fprintf(os.Stderr, "tarserved: fault drill armed: SIGKILL worker of %s on first attempt\n", *killWorker)
		}
		be, err := serve.NewSubprocessBackend(serve.SubprocessOptions{
			WorkerBin: resolveWorkerBin(*workerBin),
			Workers:   *workers,
			Retry:     serve.RetryPolicy{MaxRetries: *jobRetries},
			Faults:    fcfg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tarserved:", err)
			os.Exit(2)
		}
		opts.Backend = be
	default:
		fmt.Fprintf(os.Stderr, "tarserved: unknown -backend %q (want inprocess or subprocess)\n", *backend)
		os.Exit(2)
	}

	// Cluster mode: place every experiment on the consistent-hash ring over
	// the peer set and forward mis-routed flights to their owner. The shared
	// store (and the forward marker protocol) guarantees each unique confhash
	// simulates once fleet-wide regardless of which node clients talk to.
	var stopProber func()
	if *advertiseAddr != "" || len(peers) > 0 {
		if *advertiseAddr == "" || len(peers) == 0 {
			fmt.Fprintln(os.Stderr, "tarserved: cluster mode needs both -advertise and -peers")
			os.Exit(2)
		}
		if *nodeID == "" {
			*nodeID = *advertiseAddr
		}
		members := cluster.NewMembership(append([]string{*advertiseAddr}, peers...))
		opts.Router = cluster.NewForwarder(*advertiseAddr, *nodeID, members)
		opts.NodeID = *nodeID
		opts.ClusterInfo = func() (uint64, int) {
			_, gen := members.Ring()
			return gen, len(members.Alive())
		}
		stopProber = members.StartProber(*probeInterval)
		fmt.Fprintf(os.Stderr, "tarserved: cluster mode: node %s advertising %s, %d configured members\n",
			*nodeID, *advertiseAddr, len(members.Peers()))
	} else if *nodeID != "" {
		opts.NodeID = *nodeID
	}
	if stopProber != nil {
		defer stopProber()
	}

	s := serve.New(opts)
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tarserved: listening on %s (%s backend)\n", *addr, s.Backend().Kind())

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "tarserved: %v — draining in-flight simulations\n", sig)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "tarserved:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tarserved:", err)
		httpSrv.Close()
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "tarserved: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "tarserved: drained, exiting")
}

// resolveWorkerBin finds the tarworker binary: an explicit -worker-bin wins,
// then a tarworker next to this executable (the usual deploy layout), then
// whatever $PATH offers. The backend validates the final choice.
func resolveWorkerBin(explicit string) string {
	if explicit != "" {
		return explicit
	}
	if exe, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(exe), "tarworker")
		if _, err := os.Stat(sibling); err == nil {
			return sibling
		}
	}
	if p, err := exec.LookPath("tarworker"); err == nil {
		return p
	}
	return "tarworker" // let the backend report the lookup failure
}
