// Command tarworker is the subprocess execution unit of tarserved's
// subprocess backend. It is not meant to be invoked by hand: the supervisor
// writes one fully-resolved job spec (JSON) to its stdin, the worker runs
// that single simulation and writes a start event plus one result line to
// stdout, then exits. Process-per-job is the isolation boundary — a wedged
// or crashing model build dies alone and the supervisor retries the job on
// a fresh worker.
//
// Manual smoke test:
//
//	echo '{"bench":"dgemm","config":"T","scale":"test"}' | tarworker
package main

import (
	"os"

	"repro/internal/serve"
)

func main() {
	os.Exit(serve.WorkerMain(os.Stdin, os.Stdout))
}
