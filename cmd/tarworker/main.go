// Command tarworker is the subprocess execution unit of tarserved's
// subprocess backend. It is not meant to be invoked by hand: the supervisor
// writes one fully-resolved job spec (JSON) to its stdin, the worker runs
// that single simulation and writes a start event plus one result line to
// stdout, then exits. Process-per-job is the isolation boundary — a wedged
// or crashing model build dies alone and the supervisor retries the job on
// a fresh worker.
//
// Manual smoke test:
//
//	echo '{"bench":"dgemm","config":"T","scale":"test"}' | tarworker
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/serve"
)

// profilePath expands a literal %p to this worker's PID, so a supervisor
// that spawns one process per job can hand every worker the same flag value
// without the profiles clobbering each other.
func profilePath(p string) string {
	return strings.ReplaceAll(p, "%p", strconv.Itoa(os.Getpid()))
}

func main() {
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (%p expands to the worker PID)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit (%p expands to the worker PID)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(profilePath(*cpuprofile))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tarworker:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tarworker:", err)
			os.Exit(2)
		}
	}
	code := serve.WorkerMain(os.Stdin, os.Stdout)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if f, err := os.Create(profilePath(*memprofile)); err == nil {
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "tarworker:", err)
			}
			f.Close()
		} else {
			fmt.Fprintln(os.Stderr, "tarworker:", err)
		}
	}
	os.Exit(code)
}
