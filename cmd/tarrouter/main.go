// Command tarrouter is the cluster front door: one /v1 surface over N
// tarserved nodes. It speaks the same wire protocol as a single node —
// clients do not know they are talking to a cluster.
//
// Usage:
//
//	tarrouter -addr :8070 -node 127.0.0.1:8077 -node 127.0.0.1:8078 -node 127.0.0.1:8079
//	tarrouter -addr :8070 -node host-a:8077,host-b:8077 -hedge-after 2s
//
// Submissions are placed on a consistent-hash ring by their content
// address (the job's confhash route key, the sweep's canonical spec key),
// so identical experiments always land on the same node. Job and sweep
// ids come back namespaced with the owning node ("job-7@n2") and route
// straight back on reads. A health prober takes dead nodes off the ring;
// submissions fail over to the ring successor, and long-poll status waits
// past -hedge-after are hedged onto another node — the cluster's shared
// store makes the duplicate a cache hit or dedup join, never a second
// simulation. /healthz reports per-node liveness and the ring generation;
// /metrics exposes tarrouter_* counters (hedges fired/won, failovers,
// peer errors, nodes alive).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

type nodeList []string

func (n *nodeList) String() string { return strings.Join(*n, ",") }

func (n *nodeList) Set(v string) error {
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			*n = append(*n, a)
		}
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8070", "listen address")
	var nodes nodeList
	flag.Var(&nodes, "node", "tarserved node address (repeatable and/or comma-separated); names n1..nN are assigned in flag order")
	hedgeAfter := flag.Duration("hedge-after", 2*time.Second, "hedge a long-poll status wait onto another node after this long (0 = never hedge)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "node health-probe interval")
	flag.Parse()

	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "tarrouter: at least one -node is required")
		os.Exit(2)
	}

	p := cluster.NewProxy(nodes, *hedgeAfter)
	stopProber := p.Membership().StartProber(*probeInterval)
	defer stopProber()

	httpSrv := &http.Server{Addr: *addr, Handler: p.Handler()}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tarrouter: listening on %s, routing %d nodes (hedge after %s)\n",
		*addr, len(p.Membership().Peers()), *hedgeAfter)

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "tarrouter: %v — shutting down\n", sig)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "tarrouter:", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tarrouter: shutdown:", err)
	}
}
