package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// A checkpoint file is a snapshot envelope tagged "ckpt" carrying the run's
// identity — benchmark, configuration, scale, pump mode — the quiescent
// boundary cycle, and the chip snapshot blob itself. Self-describing, so
// -resume needs no other flags and refuses files from a different world
// instead of silently replaying the wrong workload.
type ckptMeta struct {
	Bench  string
	Config string
	Scale  string
	NoPump bool
	Cycle  uint64
}

// writeCheckpoint persists one checkpoint atomically (temp file, fsync,
// rename) so a crash mid-write leaves either the complete file or nothing.
// It returns the final path.
func writeCheckpoint(dir string, meta ckptMeta, blob []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	w := snapshot.NewWriter()
	w.Tag("ckpt")
	w.String(meta.Bench)
	w.String(meta.Config)
	w.String(meta.Scale)
	w.Bool(meta.NoPump)
	w.U64(meta.Cycle)
	w.Bytes(blob)
	raw := w.Finish()

	name := fmt.Sprintf("%s-%s-%s@%d.ckpt", meta.Bench, meta.Config, meta.Scale, meta.Cycle)
	path := filepath.Join(dir, name)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return path, nil
}

// readCheckpoint loads and validates a checkpoint file, returning its
// metadata and the inner chip snapshot blob.
func readCheckpoint(path string) (ckptMeta, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return ckptMeta{}, nil, err
	}
	r, err := snapshot.NewReader(raw)
	if err != nil {
		return ckptMeta{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	r.Tag("ckpt")
	meta := ckptMeta{
		Bench:  r.String(),
		Config: r.String(),
		Scale:  r.String(),
		NoPump: r.Bool(),
		Cycle:  r.U64(),
	}
	blob := r.Bytes()
	if err := r.Close(); err != nil {
		return ckptMeta{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, err := workloads.ParseScale(meta.Scale); err != nil {
		return ckptMeta{}, nil, fmt.Errorf("%s: bad scale in checkpoint: %w", path, err)
	}
	return meta, blob, nil
}
