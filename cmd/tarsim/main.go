// Command tarsim runs one benchmark on one machine configuration and prints
// its performance counters.
//
// Usage:
//
//	tarsim -bench dgemm -config T
//	tarsim -bench rndcopy -config EV8 -scale test -v
//	tarsim -list
//
// Configurations: EV8, EV8+, T, T4, T10 (Table 3); add -nopump to disable
// stride-1 double-bandwidth mode (the Figure 9 ablation).
//
// Integrity flags: -check runs the microarchitectural invariant checker,
// -deadline bounds the run's wall-clock time, and -faults N arms the
// deterministic latency-jitter fault campaign with seed N (0 = off).
//
// Profiling flags: -sample N snapshots interval IPC, memory bandwidth and
// every registered occupancy gauge each N cycles and prints the series;
// -trace-out FILE exports the same series as a Chrome trace-event file for
// chrome://tracing or https://ui.perfetto.dev.
//
// Checkpoint flags: -ckpt-at N captures the chip state at the first
// quiescent boundary at or after cycle N (the post-warm-up drain; only
// benchmarks with a warm-up phase have one) and writes it atomically under
// -ckpt-dir as a self-describing .ckpt file. -resume FILE restores that
// state and runs the kernel from it — benchmark, configuration and scale
// come from the file, and the run's ROI statistics are bit-identical to a
// straight run's. Combine -resume with -sample/-trace-out to time-travel:
// re-simulate the post-checkpoint window with the profiler armed without
// paying for the warm-up again.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vasm"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	config := flag.String("config", "T", "machine: EV8, EV8+, T, T4, T10")
	scaleFlag := flag.String("scale", "bench", "input scale: test, bench or full")
	nopump := flag.Bool("nopump", false, "disable stride-1 double-bandwidth mode")
	verbose := flag.Bool("v", false, "print the full counter table")
	sample := flag.Uint64("sample", 0, "sample IPC/bandwidth/occupancy every N cycles and print the series")
	sampleCap := flag.Int("sample-cap", 0, "series ring capacity (0 = default 4096, oldest overwritten)")
	traceOut := flag.String("trace-out", "", "write the sampled series as Chrome trace-event JSON to this file")
	list := flag.Bool("list", false, "list benchmarks and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	checkFlag := flag.Bool("check", false, "run the microarchitectural invariant checker (single-stepped)")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the run (0 = none), e.g. 2m")
	faultSeed := flag.Int64("faults", 0, "seed for the deterministic latency-jitter fault campaign (0 = off)")
	benchOut := flag.String("bench-out", "", "measure simulator throughput (Table 4 kernels + full sweep) and append a row to this BENCH_sim.json file")
	benchLabel := flag.String("bench-label", "dev", "label recorded in the -bench-out row")
	benchScale := flag.String("bench-scale", "test", "input scale for -bench-out measurements")
	benchCheck := flag.Bool("bench-check", false, "with -bench-out: fail if cycles/sec regressed >20% vs the last committed row")
	ckptAt := flag.Uint64("ckpt-at", 0, "checkpoint the chip at the first quiescent boundary at or after this cycle (0 = off)")
	ckptDir := flag.String("ckpt-dir", "ckpt", "directory for -ckpt-at checkpoint files")
	resume := flag.String("resume", "", "resume from a checkpoint file written by -ckpt-at (bench/config/scale come from the file)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fatalIf(err)
		fatalIf(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			fatalIf(err)
			defer f.Close()
			runtime.GC()
			fatalIf(pprof.Lookup("allocs").WriteTo(f, 0))
		}()
	}

	if *list {
		for _, n := range workloads.Names() {
			b, _ := workloads.Get(n)
			fmt.Printf("%-16s %-14s %s\n", n, b.Class, b.Desc)
		}
		return
	}
	if *benchOut != "" {
		runBench(*benchOut, *benchLabel, *benchScale, *benchCheck)
		return
	}
	var resumeBlob []byte
	if *resume != "" {
		if *ckptAt > 0 {
			fatalIf(fmt.Errorf("-resume skips the warm-up, so there is no boundary left for -ckpt-at to capture"))
		}
		meta, blob, err := readCheckpoint(*resume)
		fatalIf(err)
		resumeBlob = blob
		// The checkpoint is self-describing; an explicitly passed identity
		// flag that contradicts it is a mistake worth refusing, not
		// silently overriding either way.
		flag.Visit(func(f *flag.Flag) {
			switch {
			case f.Name == "bench" && *bench != meta.Bench,
				f.Name == "config" && *config != meta.Config,
				f.Name == "scale" && *scaleFlag != meta.Scale,
				f.Name == "nopump" && *nopump != meta.NoPump:
				fatalIf(fmt.Errorf("-%s contradicts checkpoint %s (%s on %s, %s scale)",
					f.Name, *resume, meta.Bench, meta.Config, meta.Scale))
			}
		})
		*bench, *config, *scaleFlag, *nopump = meta.Bench, meta.Config, meta.Scale, meta.NoPump
	}
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	scale, err := workloads.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := sim.ByName(*config)
	if cfg == nil {
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		os.Exit(2)
	}
	if *nopump {
		cfg = sim.NoPump(cfg)
	}
	if *checkFlag || *deadline > 0 || *faultSeed != 0 {
		cc := *cfg
		cc.Check = *checkFlag
		cc.Deadline = *deadline
		if *faultSeed != 0 {
			cc.Faults = faults.Jitter(*faultSeed)
		}
		cfg = &cc
	}
	b, err := workloads.Get(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *traceOut != "" && *sample == 0 {
		*sample = 10_000 // tracing needs a sampling interval; pick a sane default
	}
	if *sample > 0 {
		if *ckptAt > 0 {
			fatalIf(fmt.Errorf("-ckpt-at is not supported with -sample (the sampled path runs the kernel without its warm-up)"))
		}
		runSampled(cfg, b, scale, *sample, *sampleCap, *traceOut, resumeBlob)
		return
	}
	var opts workloads.RunOpts
	var ckptPath string
	var boundary uint64
	if *ckptAt > 0 {
		if b.Setup == nil {
			fatalIf(fmt.Errorf("%s has no warm-up phase, so no quiescent boundary to checkpoint", *bench))
		}
		opts.OnWarmupSnapshot = func(cycle uint64, blob []byte) {
			boundary = cycle
			if cycle < *ckptAt {
				return
			}
			p, err := writeCheckpoint(*ckptDir, ckptMeta{
				Bench: *bench, Config: cfg.Name, Scale: scale.String(),
				NoPump: *nopump, Cycle: cycle,
			}, blob)
			fatalIf(err)
			ckptPath = p
		}
	}
	opts.WarmupSnapshot = resumeBlob
	t0 := time.Now()
	res, err := b.RunOpt(cfg, scale, opts)
	wall := time.Since(t0).Seconds()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarsim:", err)
		os.Exit(1)
	}
	if *ckptAt > 0 && ckptPath == "" {
		fatalIf(fmt.Errorf("no quiescent boundary at or after cycle %d (warm-up drains at cycle %d); no checkpoint written", *ckptAt, boundary))
	}
	if ckptPath != "" {
		fmt.Printf("checkpoint written to %s (cycle %d)\n", ckptPath, boundary)
	}
	if res.WarmupRestored {
		fmt.Printf("resumed from %s: %d warm-up cycles restored, not simulated\n", *resume, res.WarmupCycles)
	}
	opc, fpc, mpc, other := res.OPC()
	fmt.Printf("%s on %s (%s scale)\n", *bench, cfg.Name, scale)
	fmt.Printf("cycles  %d\n", res.Stats.Cycles)
	fmt.Printf("speed   %.2f Mcps (simulated cycles per wall second, %.2fs wall)\n",
		float64(res.Stats.Cycles)/wall/1e6, wall)
	fmt.Printf("opc     %.2f  (fpc %.2f, mpc %.2f, other %.2f)\n", opc, fpc, mpc, other)
	if ub := b.UsefulBytes; ub != nil {
		res.Stats.UsefulBytes = ub(scale)
		fmt.Printf("streams bandwidth %.0f MB/s, raw %.0f MB/s\n",
			res.Stats.BandwidthMBs(cfg.CPUGHz), res.Stats.RawBandwidthMBs(cfg.CPUGHz))
	}
	if *verbose {
		fmt.Println()
		fmt.Print(res.Stats.Table())
	}
}

// runSampled executes the benchmark with the registry's cycle-interval
// sampler armed, prints the series — interval IPC, interval raw memory
// bandwidth and every registered occupancy gauge — and optionally exports it
// as a Chrome trace-event file (-trace-out). With a resume blob it
// time-travels instead: the chip restores to the checkpoint boundary and
// only the post-checkpoint window is re-simulated under the profiler.
func runSampled(cfg *sim.Config, b *workloads.Benchmark, scale workloads.Scale, every uint64, capacity int, traceOut string, resumeBlob []byte) {
	var m *arch.Machine
	var chip *sim.Chip
	if resumeBlob != nil {
		var err error
		chip, m, err = sim.RestoreChip(cfg, resumeBlob)
		fatalIf(err)
		fmt.Printf("time-travel: resumed at cycle %d, sampling the window from there\n", chip.Clock())
	} else {
		m = archNew()
		chip = sim.New(cfg)
	}
	chip.EnableSampling(every, capacity)
	kernelFn := b.Scalar
	if cfg.HasVbox {
		kernelFn = b.Vector
	}
	tr := vasm.NewTrace(m, kernelFn(scale))
	defer tr.Close()
	out, err := sim.Execute(sim.RunSpec{Chip: chip, Trace: tr})
	if err != nil {
		fatalIf(err)
	}

	d := out.Series
	if d == nil {
		fatalIf(fmt.Errorf("no samples taken (run shorter than %d cycles?)", every))
	}
	fmt.Printf("%10s %8s %10s %10s", "cycle", "ipc", "mbs_raw", "retired")
	for _, g := range d.Gauges {
		fmt.Printf(" %*s", max(len(g), 6), g)
	}
	fmt.Println()
	secsPerInterval := float64(every) / (cfg.CPUGHz * 1e9)
	for _, pt := range d.Points {
		fmt.Printf("%10d %8.3f %10.0f %10d", pt.Cycle, pt.IPC,
			float64(pt.RawBytes)/secsPerInterval/1e6, pt.Retired)
		for i, g := range d.Gauges {
			fmt.Printf(" %*d", max(len(g), 6), pt.Gauges[i])
		}
		fmt.Println()
	}
	if d.Dropped > 0 {
		fmt.Printf("(%d older points dropped by the ring bound; raise -sample-cap)\n", d.Dropped)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		fatalIf(err)
		name := fmt.Sprintf("%s on %s (%s scale)", b.Name, cfg.Name, scale)
		err = metrics.WriteChromeTrace(f, name, cfg.CPUGHz, d)
		fatalIf(err)
		fatalIf(f.Close())
		fmt.Printf("trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", traceOut)
	}
}

// runBench measures simulator throughput on the Table 4 kernels (default
// engine vs pinned single-stepping, plus the sequential full-sweep wall
// clock) and appends the row to the BENCH_sim.json trajectory. With check
// set, a >20% speedup regression against the last committed row is fatal —
// the CI bench-smoke job runs exactly this.
func runBench(path, label, scaleFlag string, check bool) {
	scale, err := workloads.ParseScale(scaleFlag)
	fatalIf(err)
	committed, err := bench.Load(path)
	fatalIf(err)
	row, err := bench.Run(bench.Options{
		Label:    label,
		Scale:    scale,
		Engine:   sim.EngineName(),
		Progress: func(s string) { fmt.Println(s) },
	})
	fatalIf(err)
	if check {
		if err := bench.CheckRegression(committed, row); err != nil {
			fmt.Fprintln(os.Stderr, "tarsim:", err)
			os.Exit(1)
		}
		fmt.Println("regression gate: ok")
	}
	fatalIf(bench.Append(path, row))
	fmt.Printf("row %q appended to %s\n", label, path)
}

func archNew() *arch.Machine { return arch.New(mem.New()) }

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarsim:", err)
		os.Exit(1)
	}
}
