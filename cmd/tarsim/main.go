// Command tarsim runs one benchmark on one machine configuration and prints
// its performance counters.
//
// Usage:
//
//	tarsim -bench dgemm -config T
//	tarsim -bench rndcopy -config EV8 -scale test -v
//	tarsim -list
//
// Configurations: EV8, EV8+, T, T4, T10 (Table 3); add -nopump to disable
// stride-1 double-bandwidth mode (the Figure 9 ablation).
//
// Integrity flags: -check runs the microarchitectural invariant checker,
// -deadline bounds the run's wall-clock time, and -faults N arms the
// deterministic latency-jitter fault campaign with seed N (0 = off).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vasm"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	config := flag.String("config", "T", "machine: EV8, EV8+, T, T4, T10")
	scaleFlag := flag.String("scale", "bench", "input scale: test, bench or full")
	nopump := flag.Bool("nopump", false, "disable stride-1 double-bandwidth mode")
	verbose := flag.Bool("v", false, "print the full counter table")
	sample := flag.Uint64("sample", 0, "print a utilization sample every N cycles")
	list := flag.Bool("list", false, "list benchmarks and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	checkFlag := flag.Bool("check", false, "run the microarchitectural invariant checker (single-stepped)")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the run (0 = none), e.g. 2m")
	faultSeed := flag.Int64("faults", 0, "seed for the deterministic latency-jitter fault campaign (0 = off)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fatalIf(err)
		fatalIf(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			fatalIf(err)
			defer f.Close()
			runtime.GC()
			fatalIf(pprof.Lookup("allocs").WriteTo(f, 0))
		}()
	}

	if *list {
		for _, n := range workloads.Names() {
			b, _ := workloads.Get(n)
			fmt.Printf("%-16s %-14s %s\n", n, b.Class, b.Desc)
		}
		return
	}
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	scale, err := workloads.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := sim.ByName(*config)
	if cfg == nil {
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		os.Exit(2)
	}
	if *nopump {
		cfg = sim.NoPump(cfg)
	}
	if *checkFlag || *deadline > 0 || *faultSeed != 0 {
		cc := *cfg
		cc.Check = *checkFlag
		cc.Deadline = *deadline
		if *faultSeed != 0 {
			cc.Faults = faults.Jitter(*faultSeed)
		}
		cfg = &cc
	}
	b, err := workloads.Get(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *sample > 0 {
		runSampled(cfg, b, scale, *sample)
		return
	}
	res, err := b.Run(cfg, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarsim:", err)
		os.Exit(1)
	}
	opc, fpc, mpc, other := res.OPC()
	fmt.Printf("%s on %s (%s scale)\n", *bench, cfg.Name, scale)
	fmt.Printf("cycles  %d\n", res.Stats.Cycles)
	fmt.Printf("opc     %.2f  (fpc %.2f, mpc %.2f, other %.2f)\n", opc, fpc, mpc, other)
	if ub := b.UsefulBytes; ub != nil {
		res.Stats.UsefulBytes = ub(scale)
		fmt.Printf("streams bandwidth %.0f MB/s, raw %.0f MB/s\n",
			res.Stats.BandwidthMBs(cfg.CPUGHz), res.Stats.RawBandwidthMBs(cfg.CPUGHz))
	}
	if *verbose {
		fmt.Println()
		fmt.Print(res.Stats.Table())
	}
}

// runSampled executes the benchmark printing a periodic utilization trace:
// Vbox port/memory occupancy and the memory system's queue depths — the
// quick way to see what a kernel is bound on.
func runSampled(cfg *sim.Config, b *workloads.Benchmark, scale workloads.Scale, every uint64) {
	fmt.Printf("%10s %6s %6s %6s %6s %6s %6s %6s %10s\n",
		"cycle", "vports", "vmem", "vqueue", "l2rdq", "l2wrq", "maf", "memq", "retired")
	chipRun := func() {
		m := archNew()
		chip := sim.New(cfg)
		chip.SetSampler(every, func(s sim.Sample) {
			fmt.Printf("%10d %6d %6d %6d %6d %6d %6d %6d %10d\n",
				s.Cycle, s.VPortsBusy, s.VMemInFly, s.VQueued,
				s.L2ReadQ, s.L2WriteQ, s.MAF, s.MemQueue, s.Retired)
		})
		kernelFn := b.Scalar
		if cfg.HasVbox {
			kernelFn = b.Vector
		}
		tr := vasm.NewTrace(m, kernelFn(scale))
		defer tr.Close()
		chip.RunTrace(tr)
	}
	chipRun()
}

func archNew() *arch.Machine { return arch.New(mem.New()) }

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarsim:", err)
		os.Exit(1)
	}
}
