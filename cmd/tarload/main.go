// Command tarload is the load generator for tarserved: it hammers the job
// API with overlapping submissions drawn from a benchmark × configuration
// set, waits for every job to finish, and reports client-side throughput
// and latency next to the server's own cache counters.
//
// Usage:
//
//	tarload -addr http://127.0.0.1:8077 -c 32 -n 128 \
//	        -benches streams_copy -configs EV8,EV8+,T,T4 -scale test
//
// Because the server deduplicates by content address, a -n much larger than
// the distinct set size is the interesting regime: the run above performs
// exactly 4 simulations no matter how many of the 128 requests overlap.
// -out writes a machine-readable JSON report (the BENCH_serve baseline).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type report struct {
	Addr        string   `json:"addr"`
	Concurrency int      `json:"concurrency"`
	Requests    int      `json:"requests"`
	Benches     []string `json:"benches"`
	Configs     []string `json:"configs"`
	Scale       string   `json:"scale"`
	// Backend is the server's execution backend as reported by /healthz
	// (inprocess or subprocess), so a stored baseline names the execution
	// path it measured.
	Backend string `json:"backend,omitempty"`

	WallSeconds   float64 `json:"wall_seconds"`
	Throughput    float64 `json:"throughput_jobs_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	Done          int     `json:"done"`
	Failed        int     `json:"failed"`
	ClientErrors  int     `json:"client_errors"`
	CacheHits     float64 `json:"server_cache_hits"`
	CacheMisses   float64 `json:"server_cache_misses"`
	DedupJoined   float64 `json:"server_dedup_joined"`
	SimsStarted   float64 `json:"server_sims_started"`
	SimsCompleted float64 `json:"server_sims_completed"`
	// WorkerRetries/WorkerRestarts are the subprocess fleet's recovery
	// counters (0 on the in-process backend).
	WorkerRetries  float64 `json:"server_worker_retries"`
	WorkerRestarts float64 `json:"server_worker_restarts"`

	// Experiments carries the server's per-experiment series summaries
	// (the labeled tarserved_experiment_* gauges): one row per distinct
	// simulation the load run touched, with its sim-internal cycle count
	// and IPC next to the client-side latencies above.
	Experiments []expSeries `json:"experiments,omitempty"`
}

// expSeries is one scraped tarserved_experiment_* label set.
type expSeries struct {
	Key          string  `json:"key"`
	Bench        string  `json:"bench"`
	Config       string  `json:"config"`
	Cycles       float64 `json:"cycles"`
	IPC          float64 `json:"ipc"`
	MCPS         float64 `json:"mcps"`
	SamplePoints float64 `json:"sample_points"`
	CacheHits    float64 `json:"cache_hits"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "tarserved base URL")
	conc := flag.Int("c", 32, "concurrent clients")
	n := flag.Int("n", 128, "total job submissions")
	benches := flag.String("benches", "streams_copy", "comma-separated benchmark names")
	configs := flag.String("configs", "EV8,EV8+,T,T4", "comma-separated machine configurations")
	scale := flag.String("scale", "test", "input scale: test, bench or full")
	wait := flag.Duration("wait", 30*time.Second, "long-poll interval per status request")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	wantBackend := flag.String("backend", "", "assert the server runs this execution backend (inprocess or subprocess) before loading it")
	flag.Parse()

	serverBackend, err := probeBackend(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarload: healthz probe:", err)
	}
	if *wantBackend != "" && serverBackend != *wantBackend {
		fmt.Fprintf(os.Stderr, "tarload: server runs backend %q, want %q\n", serverBackend, *wantBackend)
		os.Exit(1)
	}

	bs := strings.Split(*benches, ",")
	cs := strings.Split(*configs, ",")
	type pair struct{ bench, config string }
	var set []pair
	for _, b := range bs {
		for _, c := range cs {
			set = append(set, pair{strings.TrimSpace(b), strings.TrimSpace(c)})
		}
	}

	var (
		mu        sync.Mutex
		latencies []float64
		done      int
		failed    int
		clientErr int
	)
	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				p := set[i%len(set)]
				t0 := time.Now()
				state, err := runJob(*addr, p.bench, p.config, *scale, *wait)
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					clientErr++
					fmt.Fprintf(os.Stderr, "tarload: job %d (%s@%s): %v\n", i, p.bench, p.config, err)
				case state == "done":
					done++
					latencies = append(latencies, float64(lat.Milliseconds()))
				default:
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	rep := report{
		Addr: *addr, Concurrency: *conc, Requests: *n,
		Benches: bs, Configs: cs, Scale: *scale, Backend: serverBackend,
		WallSeconds: wall.Seconds(),
		Throughput:  float64(*n) / wall.Seconds(),
		Done:        done, Failed: failed, ClientErrors: clientErr,
	}
	sort.Float64s(latencies)
	if len(latencies) > 0 {
		rep.P50Ms = latencies[len(latencies)/2]
		rep.P99Ms = latencies[int(0.99*float64(len(latencies)-1))]
	}
	if m, exps, err := scrapeMetrics(*addr); err == nil {
		rep.CacheHits = m["tarserved_cache_hits_total"]
		rep.CacheMisses = m["tarserved_cache_misses_total"]
		rep.DedupJoined = m["tarserved_dedup_joined_total"]
		rep.SimsStarted = m["tarserved_sims_started_total"]
		rep.SimsCompleted = m["tarserved_sims_completed_total"]
		rep.WorkerRetries = m["tarserved_workers_retries"]
		rep.WorkerRestarts = m["tarserved_workers_restarts"]
		rep.Experiments = exps
	} else {
		fmt.Fprintln(os.Stderr, "tarload: metrics scrape failed:", err)
	}

	fmt.Fprintf(os.Stderr,
		"tarload: %d requests (%d done, %d failed, %d client errors) in %.2fs — %.1f jobs/s, p50 %.0fms p99 %.0fms, server ran %.0f sims (%.0f cache hits, %.0f dedup joins)\n",
		*n, done, failed, clientErr, wall.Seconds(), rep.Throughput, rep.P50Ms, rep.P99Ms,
		rep.SimsStarted, rep.CacheHits, rep.DedupJoined)

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tarload:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if failed > 0 || clientErr > 0 {
		os.Exit(1)
	}
}

// probeBackend asks /healthz which execution backend the server runs.
func probeBackend(addr string) (string, error) {
	resp, err := http.Get(addr + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var hz struct {
		Backend string `json:"backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return "", err
	}
	return hz.Backend, nil
}

// runJob submits one experiment and long-polls until it reaches a terminal
// state, returning that state.
func runJob(addr, bench, config, scale string, wait time.Duration) (string, error) {
	body, _ := json.Marshal(map[string]any{"bench": bench, "config": config, "scale": scale})
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	for st.State != "done" && st.State != "failed" {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=%s", addr, st.ID, wait))
		if err != nil {
			return "", err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
	}
	return st.State, nil
}

// scrapeMetrics pulls the plain counters and the labeled per-experiment
// series summaries out of /metrics.
func scrapeMetrics(addr string) (map[string]float64, []expSeries, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]float64{}
	re := regexp.MustCompile(`(?m)^([a-z_]+) (\S+)$`)
	for _, m := range re.FindAllStringSubmatch(string(body), -1) {
		if v, err := strconv.ParseFloat(m[2], 64); err == nil {
			out[m[1]] = v
		}
	}
	return out, scrapeExperiments(string(body)), nil
}

// scrapeExperiments parses the tarserved_experiment_* label sets into rows,
// one per distinct (key, bench, config), sorted by key for a deterministic
// report.
func scrapeExperiments(body string) []expSeries {
	re := regexp.MustCompile(`(?m)^tarserved_experiment_([a-z_]+)\{key="([^"]*)",bench="([^"]*)",config="([^"]*)"\} (\S+)$`)
	byKey := map[string]*expSeries{}
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		field, key, bench, config := m[1], m[2], m[3], m[4]
		v, err := strconv.ParseFloat(m[5], 64)
		if err != nil {
			continue
		}
		e, ok := byKey[key]
		if !ok {
			e = &expSeries{Key: key, Bench: bench, Config: config}
			byKey[key] = e
		}
		switch field {
		case "cycles":
			e.Cycles = v
		case "ipc":
			e.IPC = v
		case "mcps":
			e.MCPS = v
		case "sample_points":
			e.SamplePoints = v
		case "cache_hits":
			e.CacheHits = v
		}
	}
	var exps []expSeries
	for _, e := range byKey {
		exps = append(exps, *e)
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].Key < exps[j].Key })
	return exps
}
