// Command tarload is the load generator for tarserved: it hammers the job
// API with overlapping submissions drawn from a benchmark × configuration
// set, waits for every job to finish, and reports client-side throughput
// and latency next to the server's own cache counters.
//
// Usage:
//
//	tarload -addr http://127.0.0.1:8077 -c 32 -n 128 \
//	        -benches streams_copy -configs EV8,EV8+,T,T4 -scale test
//	tarload -addr 127.0.0.1:8077 -addr 127.0.0.1:8078 -addr 127.0.0.1:8079 -n 256
//
// Repeating -addr drives a cluster: submissions round-robin across the
// nodes (each job's status polls stay on its node), latency percentiles
// are computed over the merged raw samples from every node, and the
// server-side counters in the report are summed fleet-wide. Pointing a
// single -addr at tarrouter works too — the router speaks the same wire
// protocol.
//
// Because the server deduplicates by content address, a -n much larger than
// the distinct set size is the interesting regime: the run above performs
// exactly 4 simulations no matter how many of the 128 requests overlap.
// -out writes a machine-readable JSON report (the BENCH_serve baseline).
//
// -sweep switches to sweep-shaped traffic: instead of hammering /v1/jobs,
// tarload posts one design-space sweep (axes like
// "lanes=8,16;l2_kb=4096,16384" over the -benches list, based on the first
// -configs entry) to /v1/sweeps, follows per-point progress, and records a
// Sweeps section in the report — points, unique simulations, wall time,
// Pareto-frontier size, and point-latency percentiles.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type report struct {
	Addr string `json:"addr"`
	// Nodes lists every target when -addr was repeated (cluster runs):
	// requests round-robin across them and the server counters below are
	// summed fleet-wide. Latency percentiles are computed over the merged
	// raw per-request samples, never by averaging per-node percentiles.
	Nodes       []string `json:"nodes,omitempty"`
	Concurrency int      `json:"concurrency"`
	Requests    int      `json:"requests"`
	Benches     []string `json:"benches"`
	Configs     []string `json:"configs"`
	Scale       string   `json:"scale"`
	// Backend is the server's execution backend as reported by /healthz
	// (inprocess or subprocess), so a stored baseline names the execution
	// path it measured.
	Backend string `json:"backend,omitempty"`

	WallSeconds  float64 `json:"wall_seconds"`
	Throughput   float64 `json:"throughput_jobs_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Done         int     `json:"done"`
	Failed       int     `json:"failed"`
	ClientErrors int     `json:"client_errors"`
	// Robustness outcomes: Shed counts submissions the server refused with
	// "queue_full" (after any Retry-After retries were spent),
	// DeadlineExceeded jobs shed in the queue with "deadline_exceeded",
	// WorkerCrashes jobs that exhausted the fleet's retry budget, and
	// Retries the client-side resubmissions Retry-After earned. Under
	// overload these are expected, structured outcomes (-allow-shed), not
	// failures.
	Shed             int     `json:"shed"`
	DeadlineExceeded int     `json:"deadline_exceeded"`
	WorkerCrashes    int     `json:"worker_crashes"`
	Retries          int     `json:"client_retries"`
	CacheHits        float64 `json:"server_cache_hits"`
	CacheMisses      float64 `json:"server_cache_misses"`
	DedupJoined      float64 `json:"server_dedup_joined"`
	SimsStarted      float64 `json:"server_sims_started"`
	SimsCompleted    float64 `json:"server_sims_completed"`
	// WorkerRetries/WorkerRestarts are the subprocess fleet's recovery
	// counters (0 on the in-process backend).
	WorkerRetries  float64 `json:"server_worker_retries"`
	WorkerRestarts float64 `json:"server_worker_restarts"`
	// The server's own overload counters, scraped after the run.
	ServerShedQueueFull float64 `json:"server_shed_queue_full"`
	ServerShedDeadline  float64 `json:"server_shed_deadline"`
	ServerPoisonShed    float64 `json:"server_poison_shed"`
	// Warm-up snapshot counters: runs that forked from a stored post-warm-up
	// chip snapshot (hits) vs runs that had to simulate the warm-up (misses),
	// the simulated cycles that reuse avoided, and the snapshot store's
	// byte/quarantine/eviction health.
	SnapshotHits        float64 `json:"server_snapshot_hits"`
	SnapshotMisses      float64 `json:"server_snapshot_misses"`
	WarmupCyclesSaved   float64 `json:"server_warmup_cycles_saved"`
	SnapshotBytes       float64 `json:"server_snapshot_bytes"`
	SnapshotQuarantined float64 `json:"server_snapshot_quarantined"`
	SnapshotEvicted     float64 `json:"server_snapshot_evicted"`

	// Experiments carries the server's per-experiment series summaries
	// (the labeled tarserved_experiment_* gauges): one row per distinct
	// simulation the load run touched, with its sim-internal cycle count
	// and IPC next to the client-side latencies above.
	Experiments []expSeries `json:"experiments,omitempty"`

	// Sweeps records sweep-shaped runs (-sweep): one row per sweep posted.
	Sweeps []sweepReport `json:"sweeps,omitempty"`
}

// sweepReport is one design-space sweep as the client saw it: grid size,
// how many simulations the server actually ran (the dedup payoff), the
// Pareto-frontier size, and per-point completion latencies.
type sweepReport struct {
	Key         string `json:"key"`
	State       string `json:"state"`
	Points      int    `json:"points"`
	Experiments int    `json:"experiments"`
	// UniqueSims is the server-side sims_started delta across the sweep —
	// the number of simulations that were not answered by dedup or the
	// result store.
	UniqueSims     float64 `json:"unique_sims"`
	PointCacheHits int     `json:"point_cache_hits"`
	Shed           int     `json:"shed"`
	WallSeconds    float64 `json:"wall_seconds"`
	FrontierSize   int     `json:"frontier_size"`
	P50PointMs     float64 `json:"p50_point_ms"`
	P99PointMs     float64 `json:"p99_point_ms"`
	CacheHit       bool    `json:"cache_hit,omitempty"`
	// SnapshotHits and WarmupCyclesSaved are server-side deltas across the
	// sweep: points that forked from a shared post-warm-up snapshot instead
	// of re-simulating the warm-up, and the simulated cycles that saved.
	SnapshotHits      float64 `json:"snapshot_hits"`
	WarmupCyclesSaved float64 `json:"warmup_cycles_saved"`
}

// expSeries is one scraped tarserved_experiment_* label set.
type expSeries struct {
	Key          string  `json:"key"`
	Bench        string  `json:"bench"`
	Config       string  `json:"config"`
	Cycles       float64 `json:"cycles"`
	IPC          float64 `json:"ipc"`
	MCPS         float64 `json:"mcps"`
	SamplePoints float64 `json:"sample_points"`
	CacheHits    float64 `json:"cache_hits"`
}

// addrList collects repeated -addr flags (each value may also be
// comma-separated).
type addrList []string

func (a *addrList) String() string { return strings.Join(*a, ",") }

func (a *addrList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			if !strings.Contains(s, "://") {
				s = "http://" + s
			}
			*a = append(*a, strings.TrimRight(s, "/"))
		}
	}
	return nil
}

func main() {
	var addrs addrList
	flag.Var(&addrs, "addr", "tarserved base URL; repeat to round-robin a cluster's nodes (default http://127.0.0.1:8077)")
	conc := flag.Int("c", 32, "concurrent clients")
	n := flag.Int("n", 128, "total job submissions")
	benches := flag.String("benches", "streams_copy", "comma-separated benchmark names")
	configs := flag.String("configs", "EV8,EV8+,T,T4", "comma-separated machine configurations")
	scale := flag.String("scale", "test", "input scale: test, bench or full")
	wait := flag.Duration("wait", 30*time.Second, "long-poll interval per status request")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	wantBackend := flag.String("backend", "", "assert the server runs this execution backend (inprocess or subprocess) before loading it")
	allowShed := flag.Bool("allow-shed", false, "treat queue_full and deadline_exceeded outcomes as expected overload shedding, not run failures")
	sweepAxes := flag.String("sweep", "", `sweep mode: axes spec like "lanes=8,16;l2_kb=4096,16384" posted to /v1/sweeps instead of job traffic`)
	baseline := flag.String("baseline", "", "sweep mode: baseline configuration for speedups (default: the swept configuration)")
	flag.Parse()

	if len(addrs) == 0 {
		addrs = addrList{"http://127.0.0.1:8077"}
	}
	serverBackend, err := probeBackend(addrs[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarload: healthz probe:", err)
	}
	if *wantBackend != "" && serverBackend != *wantBackend {
		fmt.Fprintf(os.Stderr, "tarload: server runs backend %q, want %q\n", serverBackend, *wantBackend)
		os.Exit(1)
	}

	bs := strings.Split(*benches, ",")
	cs := strings.Split(*configs, ",")

	if *sweepAxes != "" {
		runSweepMode(addrs[0], serverBackend, bs, cs[0], *baseline, *scale, *sweepAxes, *out)
		return
	}

	type pair struct{ bench, config string }
	var set []pair
	for _, b := range bs {
		for _, c := range cs {
			set = append(set, pair{strings.TrimSpace(b), strings.TrimSpace(c)})
		}
	}

	var (
		mu               sync.Mutex
		latencies        []float64
		done             int
		failed           int
		clientErr        int
		shed             int
		deadlineExceeded int
		workerCrashes    int
		retries          int
	)
	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				p := set[i%len(set)]
				// Round-robin across nodes; one job's submit and status polls
				// stay on the same node (ids are node-local).
				nodeAddr := addrs[i%len(addrs)]
				t0 := time.Now()
				oc, err := runJob(nodeAddr, p.bench, p.config, *scale, *wait)
				lat := time.Since(t0)
				mu.Lock()
				retries += oc.retries
				switch {
				case err != nil:
					clientErr++
					fmt.Fprintf(os.Stderr, "tarload: job %d (%s@%s): %v\n", i, p.bench, p.config, err)
				case oc.state == "done":
					done++
					latencies = append(latencies, float64(lat.Milliseconds()))
				case oc.code == "queue_full":
					shed++
				case oc.code == "deadline_exceeded":
					deadlineExceeded++
				case oc.code == "worker_crash":
					workerCrashes++
					failed++
				default:
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	rep := report{
		Addr: addrs[0], Concurrency: *conc, Requests: *n,
		Benches: bs, Configs: cs, Scale: *scale, Backend: serverBackend,
		WallSeconds: wall.Seconds(),
		Throughput:  float64(*n) / wall.Seconds(),
		Done:        done, Failed: failed, ClientErrors: clientErr,
		Shed: shed, DeadlineExceeded: deadlineExceeded,
		WorkerCrashes: workerCrashes, Retries: retries,
	}
	if len(addrs) > 1 {
		rep.Nodes = addrs
	}
	// Percentiles over the merged raw samples from every node — merging
	// per-node p99s would understate the cluster tail.
	sort.Float64s(latencies)
	if len(latencies) > 0 {
		rep.P50Ms = latencies[len(latencies)/2]
		rep.P99Ms = latencies[int(0.99*float64(len(latencies)-1))]
	}
	if m, exps, err := scrapeCluster(addrs); err == nil {
		rep.CacheHits = m["tarserved_cache_hits_total"]
		rep.CacheMisses = m["tarserved_cache_misses_total"]
		rep.DedupJoined = m["tarserved_dedup_joined_total"]
		rep.SimsStarted = m["tarserved_sims_started_total"]
		rep.SimsCompleted = m["tarserved_sims_completed_total"]
		rep.WorkerRetries = m["tarserved_workers_retries"]
		rep.WorkerRestarts = m["tarserved_workers_restarts"]
		rep.ServerShedQueueFull = m["tarserved_shed_queue_full_total"]
		rep.ServerShedDeadline = m["tarserved_shed_deadline_total"]
		rep.ServerPoisonShed = m["tarserved_poison_shed_total"]
		rep.SnapshotHits = m["tarserved_snapshot_hits_total"]
		rep.SnapshotMisses = m["tarserved_snapshot_misses_total"]
		rep.WarmupCyclesSaved = m["tarserved_warmup_cycles_saved_total"]
		rep.SnapshotBytes = m["tarserved_snapshot_bytes"]
		rep.SnapshotQuarantined = m["tarserved_snapshot_quarantined"]
		rep.SnapshotEvicted = m["tarserved_snapshot_evicted"]
		rep.Experiments = exps
	} else {
		fmt.Fprintln(os.Stderr, "tarload: metrics scrape failed:", err)
	}

	fmt.Fprintf(os.Stderr,
		"tarload: %d requests (%d done, %d failed, %d shed, %d deadline-exceeded, %d client errors, %d retries) in %.2fs — %.1f jobs/s, p50 %.0fms p99 %.0fms, server ran %.0f sims (%.0f cache hits, %.0f dedup joins)\n",
		*n, done, failed, shed, deadlineExceeded, clientErr, retries, wall.Seconds(), rep.Throughput, rep.P50Ms, rep.P99Ms,
		rep.SimsStarted, rep.CacheHits, rep.DedupJoined)

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tarload:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if failed > 0 || clientErr > 0 {
		os.Exit(1)
	}
	if !*allowShed && (shed > 0 || deadlineExceeded > 0) {
		fmt.Fprintln(os.Stderr, "tarload: run was shed by overload protection (pass -allow-shed to treat this as expected)")
		os.Exit(1)
	}
}

// parseAxes turns "lanes=8,16;l2_kb=4096,16384" into the sweep spec's axes
// object. Validation proper is the server's job — bad knob names come back
// as bad_request envelopes naming the field.
func parseAxes(s string) (map[string]map[string][]float64, error) {
	axes := map[string]map[string][]float64{}
	for _, part := range strings.Split(s, ";") {
		name, vals, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("axis %q: want name=v1,v2,...", part)
		}
		var fs []float64
		for _, v := range strings.Split(vals, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return nil, fmt.Errorf("axis %q: %v", name, err)
			}
			fs = append(fs, f)
		}
		axes[name] = map[string][]float64{"values": fs}
	}
	return axes, nil
}

// sweepStatusWire is the subset of the server's sweep status tarload reads.
type sweepStatusWire struct {
	ID             string `json:"id"`
	Key            string `json:"key"`
	State          string `json:"state"`
	CacheHit       bool   `json:"cache_hit"`
	Total          int    `json:"total"`
	Done           int    `json:"done"`
	Failed         int    `json:"failed"`
	Shed           int    `json:"shed"`
	PointCacheHits int    `json:"point_cache_hits"`
	Points         []struct {
		State string `json:"state"`
	} `json:"points"`
	Result *struct {
		Frontier []int `json:"frontier"`
		Points   []struct {
			Config string `json:"config"`
		} `json:"points"`
	} `json:"result"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// runSweepMode posts one sweep and follows it to a terminal state, recording
// per-point completion latencies along the way, then writes the report and
// exits with the sweep's fate.
func runSweepMode(addr, serverBackend string, benches []string, config, baseline, scale, axesSpec, out string) {
	axes, err := parseAxes(axesSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarload: -sweep:", err)
		os.Exit(2)
	}
	spec := map[string]any{"config": config, "benches": benches, "scale": scale, "axes": axes}
	if baseline != "" {
		spec["baseline"] = baseline
	}
	simsBefore, snapHitsBefore, savedBefore := 0.0, 0.0, 0.0
	if m, _, err := scrapeMetrics(addr); err == nil {
		simsBefore = m["tarserved_sims_started_total"]
		snapHitsBefore = m["tarserved_snapshot_hits_total"]
		savedBefore = m["tarserved_warmup_cycles_saved_total"]
	}

	body, _ := json.Marshal(spec)
	start := time.Now()
	resp, err := http.Post(addr+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarload: sweep submit:", err)
		os.Exit(1)
	}
	var st sweepStatusWire
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tarload: sweep submit decode:", err)
		os.Exit(1)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		msg := ""
		if st.Error != nil {
			msg = st.Error.Code + ": " + st.Error.Message
		}
		fmt.Fprintf(os.Stderr, "tarload: sweep submit: HTTP %d %s\n", resp.StatusCode, msg)
		os.Exit(1)
	}

	// Follow per-point progress: a point's latency is the time from sweep
	// submission until it was first observed done.
	pointDoneMs := map[int]float64{}
	for st.State != "done" && st.State != "failed" {
		resp, err := http.Get(addr + "/v1/sweeps/" + st.ID + "?wait=500ms")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tarload: sweep poll:", err)
			os.Exit(1)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tarload: sweep poll decode:", err)
			os.Exit(1)
		}
		for i, p := range st.Points {
			if p.State == "done" {
				if _, seen := pointDoneMs[i]; !seen {
					pointDoneMs[i] = float64(time.Since(start).Milliseconds())
				}
			}
		}
	}
	wall := time.Since(start)
	for i, p := range st.Points {
		if p.State == "done" {
			if _, seen := pointDoneMs[i]; !seen {
				pointDoneMs[i] = float64(wall.Milliseconds())
			}
		}
	}

	sr := sweepReport{
		Key:            st.Key,
		State:          st.State,
		Points:         len(st.Points),
		Experiments:    st.Total,
		PointCacheHits: st.PointCacheHits,
		Shed:           st.Shed,
		WallSeconds:    wall.Seconds(),
		CacheHit:       st.CacheHit,
	}
	if st.Result != nil {
		sr.FrontierSize = len(st.Result.Frontier)
	}
	var lats []float64
	for _, ms := range pointDoneMs {
		lats = append(lats, ms)
	}
	sort.Float64s(lats)
	if len(lats) > 0 {
		sr.P50PointMs = lats[len(lats)/2]
		sr.P99PointMs = lats[int(0.99*float64(len(lats)-1))]
	}
	if m, _, err := scrapeMetrics(addr); err == nil {
		sr.UniqueSims = m["tarserved_sims_started_total"] - simsBefore
		sr.SnapshotHits = m["tarserved_snapshot_hits_total"] - snapHitsBefore
		sr.WarmupCyclesSaved = m["tarserved_warmup_cycles_saved_total"] - savedBefore
	}

	rep := report{
		Addr: addr, Benches: benches, Configs: []string{config}, Scale: scale,
		Backend: serverBackend, WallSeconds: wall.Seconds(),
		Done: st.Done, Failed: st.Failed, Shed: st.Shed,
		Sweeps: []sweepReport{sr},
	}
	fmt.Fprintf(os.Stderr,
		"tarload: sweep %s %s — %d points, %d experiments (%.0f simulated, %d from store, %d shed) in %.2fs; frontier %d, point p50 %.0fms p99 %.0fms; %.0f warm-up forks saved %.0f cycles\n",
		st.Key, st.State, sr.Points, sr.Experiments, sr.UniqueSims, sr.PointCacheHits, sr.Shed,
		sr.WallSeconds, sr.FrontierSize, sr.P50PointMs, sr.P99PointMs, sr.SnapshotHits, sr.WarmupCyclesSaved)

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tarload:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if st.State != "done" {
		if st.Error != nil {
			fmt.Fprintf(os.Stderr, "tarload: sweep failed: %s: %s\n", st.Error.Code, st.Error.Message)
		}
		os.Exit(1)
	}
}

// probeBackend asks /healthz which execution backend the server runs.
func probeBackend(addr string) (string, error) {
	resp, err := http.Get(addr + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var hz struct {
		Backend string `json:"backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return "", err
	}
	return hz.Backend, nil
}

// outcome is one job's terminal fate: its state ("done", "failed" or
// "shed"), the envelope code when it did not complete, and how many
// Retry-After resubmissions it took to get in the door.
type outcome struct {
	state   string
	code    string
	retries int
}

// runJob submits one experiment and long-polls until it reaches a terminal
// state. A "queue_full" rejection is retried after the server's Retry-After
// estimate (capped, bounded attempts) — the polite client the admission
// controller's header is designed for; when the retries run out the job
// counts as shed rather than erroring.
func runJob(addr, bench, config, scale string, wait time.Duration) (outcome, error) {
	body, _ := json.Marshal(map[string]any{"bench": bench, "config": config, "scale": scale})
	var oc outcome
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	for {
		resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return oc, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			var envelope struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			err := json.NewDecoder(resp.Body).Decode(&envelope)
			retryAfter := resp.Header.Get("Retry-After")
			resp.Body.Close()
			if err != nil {
				return oc, err
			}
			if envelope.Error.Code == "queue_full" && oc.retries < 3 {
				oc.retries++
				delay := time.Second
				if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
					delay = time.Duration(s) * time.Second
				}
				if delay > 5*time.Second {
					delay = 5 * time.Second
				}
				time.Sleep(delay)
				continue
			}
			oc.state, oc.code = "shed", envelope.Error.Code
			return oc, nil
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return oc, err
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			if st.Error != nil {
				// A structured terminal envelope (e.g. a poisoned confhash's
				// recorded worker_crash) is an outcome, not a client error.
				oc.state, oc.code = "failed", st.Error.Code
				return oc, nil
			}
			return oc, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
		break
	}
	for st.State != "done" && st.State != "failed" {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=%s", addr, st.ID, wait))
		if err != nil {
			return oc, err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return oc, err
		}
	}
	oc.state = st.State
	if st.Error != nil {
		oc.code = st.Error.Code
	}
	return oc, nil
}

// scrapeCluster scrapes every node's /metrics and folds them into one
// fleet-wide view: plain counters are summed (a cluster's sims_started is
// the sum of each node's), and per-experiment rows are merged by key —
// with cross-node dedup each experiment simulates on one node, so the
// first row carrying its series wins while cache hits accumulate.
func scrapeCluster(addrs []string) (map[string]float64, []expSeries, error) {
	total := map[string]float64{}
	byKey := map[string]*expSeries{}
	var firstErr error
	scraped := 0
	for _, a := range addrs {
		m, exps, err := scrapeMetrics(a)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		scraped++
		for k, v := range m {
			total[k] += v
		}
		for _, e := range exps {
			if have, ok := byKey[e.Key]; ok {
				have.CacheHits += e.CacheHits
			} else {
				cp := e
				byKey[e.Key] = &cp
			}
		}
	}
	if scraped == 0 {
		return nil, nil, firstErr
	}
	merged := make([]expSeries, 0, len(byKey))
	for _, e := range byKey {
		merged = append(merged, *e)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	return total, merged, nil
}

// scrapeMetrics pulls the plain counters and the labeled per-experiment
// series summaries out of /metrics.
func scrapeMetrics(addr string) (map[string]float64, []expSeries, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]float64{}
	re := regexp.MustCompile(`(?m)^([a-z_]+) (\S+)$`)
	for _, m := range re.FindAllStringSubmatch(string(body), -1) {
		if v, err := strconv.ParseFloat(m[2], 64); err == nil {
			out[m[1]] = v
		}
	}
	// Store-health gauges carry a tier label; fold them in under the bare
	// metric name (one store, one tier — the label is for dashboards).
	reTier := regexp.MustCompile(`(?m)^([a-z_]+)\{tier="[^"]*"\} (\S+)$`)
	for _, m := range reTier.FindAllStringSubmatch(string(body), -1) {
		if v, err := strconv.ParseFloat(m[2], 64); err == nil {
			out[m[1]] = v
		}
	}
	return out, scrapeExperiments(string(body)), nil
}

// scrapeExperiments parses the tarserved_experiment_* label sets into rows,
// one per distinct (key, bench, config), sorted by key for a deterministic
// report.
func scrapeExperiments(body string) []expSeries {
	re := regexp.MustCompile(`(?m)^tarserved_experiment_([a-z_]+)\{key="([^"]*)",bench="([^"]*)",config="([^"]*)"\} (\S+)$`)
	byKey := map[string]*expSeries{}
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		field, key, bench, config := m[1], m[2], m[3], m[4]
		v, err := strconv.ParseFloat(m[5], 64)
		if err != nil {
			continue
		}
		e, ok := byKey[key]
		if !ok {
			e = &expSeries{Key: key, Bench: bench, Config: config}
			byKey[key] = e
		}
		switch field {
		case "cycles":
			e.Cycles = v
		case "ipc":
			e.IPC = v
		case "mcps":
			e.MCPS = v
		case "sample_points":
			e.SamplePoints = v
		case "cache_hits":
			e.CacheHits = v
		}
	}
	var exps []expSeries
	for _, e := range byKey {
		exps = append(exps, *e)
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].Key < exps[j].Key })
	return exps
}
