// Command tarasm works with Tarantula assembly in both directions: it
// prints the head of a benchmark kernel's dynamic instruction trace (a
// debugging aid showing the hand-coded vector assembly exactly as the
// timing models consume it), and it assembles and runs standalone .s files
// on the functional machine.
//
// Usage:
//
//	tarasm -bench dgemm -n 60          # disassemble a kernel trace
//	tarasm -bench moldyn -scalar -n 40
//	tarasm -file prog.s                # assemble + run, dump registers
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/asmtext"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/vasm"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "", "benchmark name")
	scalar := flag.Bool("scalar", false, "disassemble the scalar (EV8) kernel")
	n := flag.Int("n", 48, "number of dynamic instructions to print")
	skip := flag.Int("skip", 0, "dynamic instructions to skip first")
	file := flag.String("file", "", "assemble and run a .s file on the functional machine")
	steps := flag.Int("steps", 1_000_000, "instruction budget for -file execution")
	flag.Parse()

	if *file != "" {
		runFile(*file, *steps)
		return
	}
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	b, err := workloads.Get(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kernel := b.Vector(workloads.Test)
	if *scalar {
		kernel = b.Scalar(workloads.Test)
	}
	m := arch.New(mem.New())
	tr := vasm.NewTrace(m, kernel)
	defer tr.Close()
	for i := 0; i < *skip; i++ {
		if tr.Next() == nil {
			return
		}
	}
	for i := 0; i < *n; i++ {
		d := tr.Next()
		if d == nil {
			return
		}
		extra := ""
		switch {
		case d.Inst.Info().IsBranch:
			extra = fmt.Sprintf("  ; taken=%v", d.Eff.Taken)
		case len(d.Eff.Addrs) == 1:
			extra = fmt.Sprintf("  ; ea=%#x", d.Eff.Addrs[0])
		case len(d.Eff.Addrs) > 1:
			extra = fmt.Sprintf("  ; %d elems, first ea=%#x stride=%d",
				len(d.Eff.Addrs), d.Eff.Addrs[0], d.Eff.Stride)
		}
		fmt.Printf("%8d  %-36s%s\n", d.Seq, d.Inst.String(), extra)
	}
}

// runFile assembles and executes a standalone program, then dumps the
// architectural state a debugger would show.
func runFile(path string, steps int) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := asmtext.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "assemble:", err)
		os.Exit(1)
	}
	fmt.Print(asmtext.Disassemble(prog))
	m := arch.New(mem.New())
	nexec, err := m.Run(prog, steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	fmt.Printf("\nexecuted %d instructions\n", nexec)
	for i := 0; i < 31; i++ {
		if m.R[i] != 0 {
			fmt.Printf("r%-2d = %#x (%d)\n", i, m.R[i], int64(m.R[i]))
		}
	}
	for i := 0; i < 31; i++ {
		if m.F[i] != 0 {
			fmt.Printf("f%-2d = %g\n", i, m.ReadF(i))
		}
	}
	for v := 0; v < 31; v++ {
		nz := 0
		for e := 0; e < isa.VLMax; e++ {
			if m.V[v][e] != 0 {
				nz++
			}
		}
		if nz > 0 {
			fmt.Printf("v%-2d: %d non-zero elements, v%d[0..3] = %d %d %d %d\n",
				v, nz, v, m.V[v][0], m.V[v][1], m.V[v][2], m.V[v][3])
		}
	}
}
